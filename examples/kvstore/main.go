// kvstore demonstrates the paper's agreement/execution separation (Section
// 1): consensus runs across the whole 10-party tribe, but only the 6-member
// clan stores payloads and executes transactions. A client submits KV
// operations to clan members and accepts each result once f_c+1 = 3
// executors return matching signed responses — enough to guarantee at least
// one honest executor stands behind the answer.
//
// Each clan member executes through the dependency-aware parallel engine:
// committed batches form behind the async exec stage (ExecQueue), the engine
// levels their conflict graph, and independent transactions run on
// ExecWorkers workers — with responses and state bit-identical to serial
// execution, so the f_c+1 matching-response guarantee is unaffected.
package main

import (
	"fmt"
	"sync"
	"time"

	"clanbft"
)

func main() {
	cluster, err := clanbft.NewCluster(clanbft.Options{
		N:           10,
		Mode:        clanbft.ModeSingleClan,
		ClanSize:    6,
		Seed:        7,
		ExecQueue:   64, // async exec stage: commit batches form behind it
		ExecWorkers: 4,  // parallel engine width per clan member
	})
	if err != nil {
		panic(err)
	}
	defer cluster.Stop()

	clan := cluster.Clans()[0]
	fmt.Printf("tribe n=10, clan %v (f_c = %d, accept at %d matching responses)\n",
		clan, cluster.ClanFaultBound(0), cluster.ClanFaultBound(0)+1)

	// Each clan member runs an executor over its committed stream.
	var mu sync.Mutex
	collector := cluster.NewCollector(0)
	accepted := map[string]string{}
	collector.Accepted = func(tx clanbft.TxID, result []byte) {}

	for _, id := range clan {
		eng := cluster.NewParallelExecutor(int(id))
		eng.Executor().Emit = func(r clanbft.Response) {
			// In a deployment this response travels to the client;
			// here the "network" is a function call.
			mu.Lock()
			collector.Add(r)
			mu.Unlock()
		}
		cluster.OnCommitBatch(int(id), eng.ApplyBatch)
	}

	cluster.Start()

	// The client workload: writes followed by reads.
	type pending struct {
		id   clanbft.TxID
		desc string
	}
	var txs []pending
	submit := func(t clanbft.Tx, desc string) {
		raw := clanbft.EncodeTx(t)
		txs = append(txs, pending{clanbft.TxIDOf(raw), desc})
		cluster.Submit(raw)
	}
	submit(clanbft.Tx{Op: clanbft.OpSet, Key: []byte("alice"), Value: []byte("100")}, "SET alice=100")
	submit(clanbft.Tx{Op: clanbft.OpSet, Key: []byte("bob"), Value: []byte("50")}, "SET bob=50")
	submit(clanbft.Tx{Op: clanbft.OpGet, Key: []byte("alice")}, "GET alice")
	submit(clanbft.Tx{Op: clanbft.OpDel, Key: []byte("bob")}, "DEL bob")
	submit(clanbft.Tx{Op: clanbft.OpGet, Key: []byte("bob")}, "GET bob")

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		doneCount := 0
		for _, p := range txs {
			if res, ok := collector.Result(p.id); ok {
				if _, seen := accepted[p.desc]; !seen {
					accepted[p.desc] = string(res)
					fmt.Printf("client accepted %-16s -> %q (f_c+1 matching responses)\n", p.desc, res)
				}
				doneCount++
			}
		}
		mu.Unlock()
		if doneCount == len(txs) {
			fmt.Println("all results accepted with honest-majority guarantees")
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("timed out")
}
