// sharedsequencer demonstrates the multi-clan protocol in the paper's
// flagship application (Section 6.1): a shared sequencer ordering
// transactions for independent rollup applications. The 12-party tribe is
// partitioned into two clans; each application submits to proposers of its
// designated clan, every transaction is sequenced in ONE global total order,
// yet each clan stores and executes only its own application's payloads.
package main

import (
	"fmt"
	"sync"
	"time"

	"clanbft"
)

func main() {
	cluster, err := clanbft.NewCluster(clanbft.Options{
		N:        12,
		Mode:     clanbft.ModeMultiClan,
		NumClans: 2,
		Seed:     11,
	})
	if err != nil {
		panic(err)
	}
	defer cluster.Stop()

	clans := cluster.Clans()
	apps := []string{"rollup-A", "rollup-B"}
	fmt.Printf("shared sequencer: clan0=%v serves %s, clan1=%v serves %s\n",
		clans[0], apps[0], clans[1], apps[1])
	fmt.Printf("multi-clan failure probability at n=12, q=2: %.3g (demo scale)\n\n",
		clanbft.PlanMultiClanFailure(12, 2))

	// A member of each clan reports the global sequence plus which
	// payloads it actually stores.
	type obs struct {
		seq      []string
		payloads map[string]int
	}
	var mu sync.Mutex
	observers := map[int]*obs{}
	for ci, clan := range clans {
		ci := ci
		o := &obs{payloads: map[string]int{}}
		observers[ci] = o
		member := int(clan[0])
		cluster.OnCommit(member, func(c clanbft.Commit) {
			mu.Lock()
			defer mu.Unlock()
			if c.Vertex.BlockDigest.IsZero() {
				return
			}
			pos := fmt.Sprintf("%d/%d", c.Vertex.Round, c.Vertex.Source)
			o.seq = append(o.seq, pos)
			if c.Block != nil {
				// This clan member holds the payload: its own app's
				// transactions.
				for _, tx := range c.Block.Txs {
					o.payloads[string(tx[:8])]++
				}
			}
		})
	}

	cluster.Start()

	// Each app submits to its own clan's proposers.
	perApp := 12
	for i := 0; i < perApp; i++ {
		for ci, app := range apps {
			tx := []byte(fmt.Sprintf("%-8.8s tx %03d", app, i))
			cluster.SubmitTo(clans[ci][i%len(clans[ci])], tx)
		}
	}

	// Wait for both observers to sequence some traffic.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		a, b := observers[0], observers[1]
		enough := len(a.seq) >= 12 && len(b.seq) >= 12 &&
			len(a.payloads) > 0 && len(b.payloads) > 0
		mu.Unlock()
		if enough {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	a, b := observers[0], observers[1]
	// The global order is identical at both clans (prefix check).
	n := len(a.seq)
	if len(b.seq) < n {
		n = len(b.seq)
	}
	for i := 0; i < n; i++ {
		if a.seq[i] != b.seq[i] {
			fmt.Println("ORDER DIVERGENCE — should never happen")
			return
		}
	}
	fmt.Printf("global sequence agrees across clans over %d block-carrying vertices\n", n)
	for ci, app := range apps {
		o := observers[ci]
		fmt.Printf("clan %d (%s) stored payload prefixes: %v\n", ci, app, keys(o.payloads))
	}
	fmt.Println("\neach clan executed only its own application's payloads,")
	fmt.Println("while sharing one global sequence — the shared-sequencer property.")
}

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
