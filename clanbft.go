// Package clanbft is a DAG-based BFT state machine replication library with
// clan-confined data dissemination, implementing "Towards Improving
// Throughput and Scalability of DAG-based BFT SMR" (EuroSys 2026).
//
// The library runs Sailfish-style DAG consensus in three modes:
//
//   - ModeSailfish: the baseline — every party replicates every transaction
//     block to the whole network.
//   - ModeSingleClan: one randomly sampled honest-majority sub-committee
//     (clan) receives, stores, and executes all payloads; the rest of the
//     network (the tribe) carries only metadata and vote traffic.
//   - ModeMultiClan: the tribe is partitioned into disjoint clans, each
//     disseminating and executing its own proposers' payloads.
//
// Quick start (in-process cluster):
//
//	cluster, _ := clanbft.NewCluster(clanbft.Options{N: 4})
//	cluster.OnCommit(0, func(c clanbft.Commit) { fmt.Println(c.Vertex.Round) })
//	cluster.Start()
//	cluster.Submit([]byte("tx"))
//	...
//	cluster.Stop()
//
// For simulated geo-distributed experiments, see internal/harness via the
// cmd/bench tool; for real-socket deployments, see NewTCPNode and
// cmd/clanbft.
package clanbft

import (
	"fmt"
	"time"

	"clanbft/internal/committee"
	"clanbft/internal/core"
	"clanbft/internal/crypto"
	"clanbft/internal/mempool"
	"clanbft/internal/metrics"
	"clanbft/internal/store"
	"clanbft/internal/transport"
	"clanbft/internal/types"
)

// Mode selects the dissemination topology.
type Mode = core.Mode

// Operating modes.
const (
	ModeSailfish   = core.ModeBaseline
	ModeSingleClan = core.ModeSingleClan
	ModeMultiClan  = core.ModeMultiClan
)

// NodeID identifies a party.
type NodeID = types.NodeID

// Commit is one entry of the total order.
type Commit = core.CommittedVertex

// ReconfigTx is a signed membership transaction (join or leave). It is
// committed through the total order like any transaction; when ordered it
// schedules an epoch fence at which the clan sampler re-runs over the new
// member set. See core.EpochInfo and DESIGN.md "Epoch reconfiguration".
type ReconfigTx = types.ReconfigTx

// Reconfiguration actions.
const (
	ReconfigJoin  = types.ReconfigJoin
	ReconfigLeave = types.ReconfigLeave
)

// EpochInfo describes one epoch: its fence round, member set, and clans.
type EpochInfo = core.EpochInfo

// Options configures a cluster.
type Options struct {
	// N is the number of parties (minimum 4).
	N int
	// Mode selects the protocol (default ModeSailfish).
	Mode Mode
	// ClanSize overrides the single clan's size; zero solves for the
	// smallest clan with dishonest-majority probability <= FailureProb.
	ClanSize int
	// NumClans partitions the tribe in ModeMultiClan (default 2).
	NumClans int
	// FailureProb bounds the probability of a dishonest-majority clan
	// (default 1e-6, the paper's evaluation setting).
	FailureProb float64
	// MaxTxPerBlock bounds how many queued transactions one proposal
	// drains (default 1000).
	MaxTxPerBlock int
	// LeadersPerRound enables multi-leader Sailfish (default 1): more
	// leader vertices commit directly at 3-delta per round, lowering
	// average commit latency.
	LeadersPerRound int
	// RoundTimeout bounds the wait for a round leader (default 3 s).
	RoundTimeout time.Duration
	// CheckSigs enables real signature verification (default on —
	// simulation harnesses turn it off and model CPU costs instead).
	NoCheckSigs bool
	// SerialVerify disables the parallel verification pipeline, forcing
	// every signature check back onto the node's serialized handler
	// goroutine (benchmarking/debugging only; default off). With
	// verification enabled, nodes normally pre-verify inbound signatures
	// on a GOMAXPROCS-wide crypto.VerifyPool so one core can no longer
	// bottleneck the whole node.
	SerialVerify bool
	// ExecQueue decouples commit delivery from the consensus handler:
	// when > 0, OnCommit callbacks run on a dedicated execution goroutine
	// behind a bounded queue of this capacity, so an expensive callback
	// (block execution) never stalls vote handling. The handoff never
	// blocks and preserves commit order exactly. 0 (default) runs
	// callbacks inline on the handler goroutine, where they must not
	// block.
	ExecQueue int
	// ExecWorkers is the worker count for parallel execution engines
	// created via NewParallelExecutor (0 = GOMAXPROCS, 1 = serial). The
	// engine executes dependency-independent transactions concurrently
	// while producing bit-identical state to serial execution; pair it
	// with OnCommitBatch and ExecQueue > 0 so batches form behind the
	// async exec stage.
	ExecWorkers int
	// StoreDir persists consensus state under this directory (one
	// subdirectory per node); empty keeps everything in memory.
	StoreDir string
	// Seed drives deterministic key generation and clan sampling.
	Seed int64
	// Members lists the parties active in epoch 0 (nil = all N). N stays
	// the universe capacity: every party holds a key and may join later
	// through a committed ReconfigTx; non-members run as observers that
	// track the DAG until a fence admits them.
	Members []NodeID
	// ReconfigDelay is the round gap between a committed ReconfigTx and
	// its epoch fence (default 32; tests use smaller values to cross
	// fences quickly).
	ReconfigDelay types.Round
	// SparseEdges enables the metadata-lean DAG mode: each proposal keeps
	// strong edges to the previous round's leader vertices and a
	// deterministic 2f+1-sized sample of the remaining parents, and the
	// redundant echo-certificate rebroadcast is suppressed. Cuts
	// per-round metadata from O(n^2) toward near-linear at large n; see
	// core.Config.SparseEdges.
	SparseEdges bool
	// LeaderReputation enables the reputation-driven leader schedule:
	// committed timeout/no-vote evidence demotes repeat offenders from
	// the rotation for ReputationWindow rounds (default 64), keeping the
	// anchor path away from crashed or slow parties. Deterministic:
	// every node derives the identical schedule from the total order.
	LeaderReputation bool
	// ReputationWindow is the demotion length in rounds (default 64).
	ReputationWindow types.Round
	// AnchorWait caps the adaptive pause for the remaining leader
	// anchors once a round's quorum (incl. the primary) is delivered;
	// 0 disables the pipelined-anchor wait.
	AnchorWait time.Duration
}

func (o *Options) fill() error {
	if o.N < 4 {
		return fmt.Errorf("clanbft: need at least 4 parties, got %d", o.N)
	}
	if o.FailureProb == 0 {
		o.FailureProb = 1e-6
	}
	if o.MaxTxPerBlock == 0 {
		o.MaxTxPerBlock = 1000
	}
	if o.RoundTimeout == 0 {
		o.RoundTimeout = 3 * time.Second
	}
	if o.Mode == ModeMultiClan && o.NumClans == 0 {
		o.NumClans = 2
	}
	return nil
}

// PlanClanSize returns the smallest clan size for a tribe of n parties with
// f = floor((n-1)/3) Byzantine such that the sampled clan has an honest
// majority except with probability at most failureProb.
func PlanClanSize(n int, failureProb float64) int {
	f := committee.MaxFaulty(n)
	return committee.MinClanSizeStrict(n, f, committee.RatFromFloat(failureProb))
}

// PlanMultiClanFailure returns the probability that partitioning n parties
// into q equal clans yields at least one clan with a dishonest majority.
func PlanMultiClanFailure(n, q int) float64 {
	f := committee.MaxFaulty(n)
	return committee.Float(committee.MultiClanFailureProb(n, f, committee.EqualPartitionSizes(n, q)))
}

// Cluster is an in-process cluster of consensus nodes connected by
// channels, running on the wall clock. It is intended for applications that
// embed replicated state machines, for tests, and for the examples; use
// NewTCPNode for multi-process deployments.
type Cluster struct {
	opts          Options
	net           *transport.ChanNet
	nodes         []*core.Node
	pools         []*mempool.Pool
	clans         [][]types.NodeID
	keys          []crypto.KeyPair
	reg           *crypto.Registry
	stores        []store.Store
	vpool         *crypto.VerifyPool
	onCommit      [][]func(Commit)
	onCommitBatch [][]func([]Commit)
	started       bool
	submitCursor  int
}

// NewCluster builds (but does not start) an in-process cluster.
func NewCluster(o Options) (*Cluster, error) {
	if err := o.fill(); err != nil {
		return nil, err
	}
	c := &Cluster{
		opts:          o,
		net:           transport.NewChanNet(o.N, 0),
		keys:          crypto.GenerateKeys(o.N, uint64(o.Seed)+1),
		onCommit:      make([][]func(Commit), o.N),
		onCommitBatch: make([][]func([]Commit), o.N),
		pools:         make([]*mempool.Pool, o.N),
	}
	c.reg = crypto.NewRegistry(c.keys, !o.NoCheckSigs)

	switch o.Mode {
	case ModeSingleClan:
		size := o.ClanSize
		if size == 0 {
			size = PlanClanSize(o.N, o.FailureProb)
		}
		if o.Members != nil {
			c.clans = [][]types.NodeID{committee.SampleClanMembers(o.Members, min(size, len(o.Members)), o.Seed+2)}
		} else {
			c.clans = [][]types.NodeID{committee.SampleClan(o.N, size, o.Seed+2)}
		}
	case ModeMultiClan:
		if o.Members != nil {
			c.clans = committee.PartitionMembers(o.Members, o.NumClans, o.Seed+2)
		} else {
			c.clans = committee.PartitionClans(o.N, o.NumClans, o.Seed+2)
		}
	}

	// With real signature checking on, front every node's mailbox with a
	// shared verification pool: signatures verify in parallel across
	// cores, handlers apply already-verified messages in order.
	verifyCores := 0
	if c.reg.CheckSigs && !o.SerialVerify {
		c.vpool = crypto.NewVerifyPool(0, 0)
		verifyCores = c.vpool.Workers()
	}

	for i := 0; i < o.N; i++ {
		i := i
		id := types.NodeID(i)
		c.pools[i] = mempool.NewPool(o.MaxTxPerBlock)
		var st store.Store
		if o.StoreDir != "" {
			disk, err := store.Open(fmt.Sprintf("%s/node%03d", o.StoreDir, i), store.Options{})
			if err != nil {
				return nil, fmt.Errorf("clanbft: open store: %w", err)
			}
			st = disk
			c.stores = append(c.stores, disk)
		}
		node := core.New(core.Config{
			Self:             id,
			N:                o.N,
			Mode:             o.Mode,
			Clans:            c.clans,
			Key:              &c.keys[i],
			Reg:              c.reg,
			Costs:            crypto.ZeroCosts(),
			Store:            st,
			Blocks:           c.pools[i],
			LeadersPerRound:  o.LeadersPerRound,
			RoundTimeout:     o.RoundTimeout,
			VerifyCores:      verifyCores,
			ExecQueue:        o.ExecQueue,
			SparseEdges:      o.SparseEdges,
			SparseSeed:       uint64(o.Seed),
			Members:          o.Members,
			ReconfigDelay:    o.ReconfigDelay,
			LeaderReputation: o.LeaderReputation,
			ReputationWindow: o.ReputationWindow,
			AnchorWait:       o.AnchorWait,
			// Batch delivery: per-commit callbacks see each vertex in
			// order, then batch callbacks get the whole consecutive
			// run (with ExecQueue > 0 a run is everything queued since
			// the previous delivery — the parallel execution engine's
			// cross-block window).
			DeliverBatch: func(cvs []core.CommittedVertex) {
				for _, cv := range cvs {
					for _, fn := range c.onCommit[i] {
						fn(cv)
					}
				}
				for _, fn := range c.onCommitBatch[i] {
					fn(cvs)
				}
			},
		}, c.net.Endpoint(id), c.net.Clock(id))
		c.nodes = append(c.nodes, node)
		if c.vpool != nil {
			if ve, ok := c.net.Endpoint(id).(transport.VerifyingEndpoint); ok {
				ve.SetVerifier(node.Verifier(), c.vpool)
			}
		}
	}
	return c, nil
}

// OnCommit registers a callback receiving node i's total order. Must be
// called before Start. With Options.ExecQueue == 0 callbacks run on the
// node's handler goroutine and must not block; with ExecQueue > 0 they run
// on the node's execution goroutine and may block freely.
func (c *Cluster) OnCommit(i int, fn func(Commit)) {
	if c.started {
		panic("clanbft: OnCommit after Start")
	}
	c.onCommit[i] = append(c.onCommit[i], fn)
}

// OnCommitBatch registers a callback receiving node i's total order in
// consecutive runs. Must be called before Start. With ExecQueue > 0 each
// call carries every vertex committed since the previous delivery — the
// window a ParallelExecutor parallelizes across — otherwise every batch is
// a singleton. How the order partitions into batches is timing-dependent;
// only the concatenation is deterministic. The slice is reused: do not
// retain it past the call.
func (c *Cluster) OnCommitBatch(i int, fn func([]Commit)) {
	if c.started {
		panic("clanbft: OnCommitBatch after Start")
	}
	c.onCommitBatch[i] = append(c.onCommitBatch[i], fn)
}

// Start launches every node.
func (c *Cluster) Start() {
	c.started = true
	for _, n := range c.nodes {
		n.Start()
	}
}

// Submit queues a transaction at a block-proposing party (round-robin over
// proposers). Returns the party it was routed to. Clients in clan-based
// modes send transactions to clan members only — exactly the paper's client
// interaction model.
func (c *Cluster) Submit(tx []byte) NodeID {
	proposers := c.Proposers()
	id := proposers[c.submitCursor%len(proposers)]
	c.submitCursor++
	c.pools[id].Submit(tx)
	return id
}

// SubmitTo queues a transaction at a specific party's pool.
func (c *Cluster) SubmitTo(id NodeID, tx []byte) {
	c.pools[id].Submit(tx)
}

// Proposers lists the parties allowed to propose transaction blocks in the
// configured mode (epoch 0; later epochs re-sample, see EpochTable).
func (c *Cluster) Proposers() []NodeID {
	if c.opts.Mode == ModeSingleClan {
		return append([]NodeID(nil), c.clans[0]...)
	}
	if c.opts.Members != nil {
		return append([]NodeID(nil), c.opts.Members...)
	}
	out := make([]NodeID, c.opts.N)
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// SubmitReconfig signs a membership transaction with the affected party's
// key and queues it at every node for inclusion in the next proposals. The
// change takes effect at the epoch fence scheduled when the transaction
// commits; EpochTable shows the resulting membership and clans.
func (c *Cluster) SubmitReconfig(action types.ReconfigAction, id NodeID, addr string) {
	tx := ReconfigTx{Action: action, Node: id, Addr: addr}
	copy(tx.PubKey[:], c.keys[id].Pub)
	core.SignReconfig(c.reg, &c.keys[id], &tx)
	for _, n := range c.nodes {
		n.SubmitReconfig(tx)
	}
}

// SubmitJoin admits party id at the next epoch fence. In-process clusters
// have no dial addresses; a synthetic one satisfies the wire format.
func (c *Cluster) SubmitJoin(id NodeID) {
	c.SubmitReconfig(ReconfigJoin, id, fmt.Sprintf("mem://%d", id))
}

// SubmitLeave retires party id at the next epoch fence.
func (c *Cluster) SubmitLeave(id NodeID) {
	c.SubmitReconfig(ReconfigLeave, id, "")
}

// EpochTable returns node i's retained epochs, oldest first.
func (c *Cluster) EpochTable(i int) []EpochInfo { return c.nodes[i].EpochTable() }

// CurrentEpoch returns the epoch governing node i's current round.
func (c *Cluster) CurrentEpoch(i int) uint64 { return c.nodes[i].CurrentEpoch() }

// Clans returns the clan composition (nil for ModeSailfish).
func (c *Cluster) Clans() [][]NodeID {
	out := make([][]NodeID, len(c.clans))
	for i, cl := range c.clans {
		out[i] = append([]NodeID(nil), cl...)
	}
	return out
}

// ClanOf returns the clan index executing id's payloads, or -1.
func (c *Cluster) ClanOf(id NodeID) int {
	for ci, cl := range c.clans {
		for _, m := range cl {
			if m == id {
				return ci
			}
		}
	}
	if c.opts.Mode == ModeSailfish {
		return 0
	}
	return -1
}

// ClanFaultBound returns f_c for clan ci (how many clan members may fail
// while clients still get f_c+1 matching responses).
func (c *Cluster) ClanFaultBound(ci int) int {
	if c.opts.Mode == ModeSailfish {
		return committee.ClanMaxFaulty(c.opts.N)
	}
	return committee.ClanMaxFaulty(len(c.clans[ci]))
}

// Registry exposes the cluster's public-key registry (for verifying
// execution responses with the execution package).
func (c *Cluster) Registry() *crypto.Registry { return c.reg }

// Keys returns node i's key pair (examples wire executors with it).
func (c *Cluster) Keys(i int) *crypto.KeyPair { return &c.keys[i] }

// Metrics returns node i's consensus counters.
func (c *Cluster) Metrics(i int) core.Metrics { return c.nodes[i].MetricsSnapshot() }

// PipelineMetrics returns node i's unified pipeline metrics snapshot:
// per-stage queue depths, occupancy, and latency histograms for
// intake/rbc/order/exec, plus transport and store counters.
func (c *Cluster) PipelineMetrics(i int) metrics.Snapshot {
	return c.nodes[i].PipelineSnapshot()
}

// Round returns node i's current round.
func (c *Cluster) Round(i int) types.Round { return c.nodes[i].Round() }

// Stop shuts the cluster down: drains pending commit deliveries (when
// ExecQueue > 0), stops every node (cancelling timers and retiring the
// execution goroutines), then closes the network, verify pool, and stores.
func (c *Cluster) Stop() {
	for _, n := range c.nodes {
		n.Flush()
	}
	for _, n := range c.nodes {
		n.Stop()
	}
	c.net.Close()
	if c.vpool != nil {
		c.vpool.Close()
	}
	for _, st := range c.stores {
		st.Close()
	}
}
