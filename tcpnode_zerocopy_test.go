package clanbft

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"clanbft/internal/transport"
	"clanbft/internal/types"
)

// runTCPCluster brings up a 4-node TCP cluster with the zero-copy receive
// path and sender-side coalescing either at their defaults (on) or both
// disabled, drives it to at least minCommits commits per node, and returns
// each node's commit order. Used by the A/B test below to show the wire-path
// optimizations do not affect agreement.
func runTCPCluster(t *testing.T, zerocopy bool, seed int64, minCommits int) [][]string {
	t.Helper()
	const n = 4
	addrs := map[NodeID]string{}
	var nodes []*TCPNode
	base := Options{N: n, Seed: seed, RoundTimeout: 2 * time.Second}
	for i := 0; i < n; i++ {
		book := map[NodeID]string{}
		for j := 0; j < n; j++ {
			book[NodeID(j)] = "127.0.0.1:0"
		}
		nd, err := NewTCPNode(TCPNodeOptions{Self: NodeID(i), Addrs: book, Options: base})
		if err != nil {
			t.Fatal(err)
		}
		if !zerocopy {
			// White-box: flip the transport back to the copying decode path
			// and one-writev-per-frame before any traffic flows.
			nd.ep.SetAliasDecode(false)
			nd.ep.SetCoalescing(transport.CoalesceConfig{})
		}
		addrs[NodeID(i)] = nd.Addr()
		nodes = append(nodes, nd)
	}
	for _, nd := range nodes {
		for id, a := range addrs {
			nd.SetPeerAddr(id, a)
		}
	}
	var mu sync.Mutex
	orders := make([][]string, n)
	txSeen := map[string]bool{}
	for i := 0; i < n; i++ {
		i := i
		nodes[i].OnCommit(func(cv Commit) {
			mu.Lock()
			orders[i] = append(orders[i], fmt.Sprintf("%d/%d", cv.Vertex.Round, cv.Vertex.Source))
			if i == 0 && cv.Block != nil {
				for _, tx := range cv.Block.Txs {
					txSeen[string(tx)] = true
				}
			}
			mu.Unlock()
		})
	}
	for _, nd := range nodes {
		nd.Start()
	}
	for i, nd := range nodes {
		nd.Submit([]byte(fmt.Sprintf("ab-tx-%d-%v", i, zerocopy)))
	}
	waitFor(t, 20*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		if len(txSeen) < n {
			return false
		}
		for i := 0; i < n; i++ {
			if len(orders[i]) < minCommits {
				return false
			}
		}
		return true
	})
	if zerocopy {
		// With the defaults on, real traffic must have exercised the new
		// machinery: batched flushes on the send side.
		st := nodes[1].Stats()
		if st.Flushes == 0 {
			t.Fatal("zero-copy run recorded no flushes")
		}
	}
	for _, nd := range nodes {
		nd.Close()
	}
	mu.Lock()
	defer mu.Unlock()
	return orders
}

// assertAgreement checks the defining SMR property on a run's outputs: every
// node's commit sequence is a prefix-consistent view of one total order.
func assertAgreement(t *testing.T, orders [][]string) {
	t.Helper()
	min := len(orders[0])
	for _, o := range orders {
		if len(o) < min {
			min = len(o)
		}
	}
	for i := 1; i < len(orders); i++ {
		for j := 0; j < min; j++ {
			if orders[i][j] != orders[0][j] {
				t.Fatalf("node %d diverges at %d: %s vs %s", i, j, orders[i][j], orders[0][j])
			}
		}
	}
}

// TestTCPClusterZeroCopyAB runs the real-socket cluster with the zero-copy
// receive path + coalescing at their defaults and again with both disabled:
// both configurations must reach cross-node agreement, and neither may leak a
// pooled buffer. (The simulator-side determinism test covers schedule
// identity; real sockets are inherently timing-dependent, so here the
// invariant is agreement, not identical schedules.)
func TestTCPClusterZeroCopyAB(t *testing.T) {
	for _, zc := range []bool{true, false} {
		t.Run(fmt.Sprintf("zerocopy=%v", zc), func(t *testing.T) {
			pc := types.StartPoolCheck()
			orders := runTCPCluster(t, zc, 11, 8)
			assertAgreement(t, orders)
			pc.AssertBalanced(t)
		})
	}
}
