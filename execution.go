package clanbft

import (
	"clanbft/internal/execution"
	"clanbft/internal/execution/parallel"
	"clanbft/internal/types"
)

// The execution layer (Section 1's agreement/execution separation): clan
// members run a deterministic KV state machine over the committed order and
// sign responses; clients accept a result once f_c+1 executors agree.

// Executor applies the committed order to a deterministic KV state machine.
type Executor = execution.Executor

// Response is one executor's signed result for a transaction.
type Response = execution.Response

// Collector aggregates executor responses client-side (f_c+1 matching).
type Collector = execution.Collector

// Tx is a decoded KV transaction.
type Tx = execution.Tx

// TxID identifies a transaction by content hash.
type TxID = execution.TxID

// KV transaction op codes.
const (
	OpSet = execution.OpSet
	OpGet = execution.OpGet
	OpDel = execution.OpDel
)

// EncodeTx serializes a KV transaction.
func EncodeTx(t Tx) []byte { return execution.EncodeTx(t) }

// TxIDOf hashes a raw transaction into its identifier.
func TxIDOf(raw []byte) types.Hash { return execution.TxIDOf(raw) }

// ParallelExecutor wraps an Executor in the dependency-aware parallel
// execution engine: it extracts read/write sets from each committed batch,
// levels the resulting conflict graph, and executes independent transactions
// concurrently — producing state roots and signed responses bit-identical to
// serial execution at any worker count.
type ParallelExecutor = parallel.Engine

// NewExecutor creates a KV executor for party i of the cluster, emitting
// signed responses.
func (c *Cluster) NewExecutor(i int) *Executor {
	return execution.NewExecutor(types.NodeID(i), c.Keys(i))
}

// NewParallelExecutor creates a parallel execution engine for party i with
// Options.ExecWorkers workers (0 = GOMAXPROCS), recording into the node's
// pipeline metrics registry. Feed it the total order via OnCommitBatch:
//
//	eng := cluster.NewParallelExecutor(0)
//	cluster.OnCommitBatch(0, eng.ApplyBatch)
//
// The engine is not concurrency-safe across callers; with ExecQueue > 0 the
// node's exec goroutine is its single caller.
func (c *Cluster) NewParallelExecutor(i int) *ParallelExecutor {
	return parallel.New(execution.NewExecutor(types.NodeID(i), c.Keys(i)),
		parallel.Config{Workers: c.opts.ExecWorkers, Metrics: c.nodes[i].PipelineMetrics()})
}

// NewCollector creates a client-side response collector for clan ci.
func (c *Cluster) NewCollector(ci int) *Collector {
	return execution.NewCollector(c.ClanFaultBound(ci), c.Registry())
}
