package clanbft

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clanbft/internal/execution"
	"clanbft/internal/gateway"
	"clanbft/internal/gateway/load"
)

// buildGatewayCluster wires a 4-node in-process cluster with one executor
// per node and a gateway on node 0 whose read path aggregates over the first
// three executors (f_c = 1 for n = 4 → quorum of 2).
func buildGatewayCluster(t *testing.T, o GatewayOptions) (*Cluster, *Gateway) {
	t.Helper()
	c, err := NewCluster(Options{N: 4, NoCheckSigs: true, ExecQueue: 64, MaxTxPerBlock: 256})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	execs := make([]*execution.Executor, 4)
	var execMu sync.Mutex
	for i := 0; i < 4; i++ {
		ex := execution.NewExecutor(NodeID(i), c.Keys(i))
		execs[i] = ex
		// Executors apply before the gateway's commit hook (registration
		// order), so a notified client's subsequent read sees its write.
		c.OnCommit(i, func(cv Commit) {
			execMu.Lock()
			ex.Apply(cv)
			execMu.Unlock()
		})
	}
	if o.Responders == nil {
		for i := 0; i < 3; i++ {
			ex := execs[i]
			o.Responders = append(o.Responders, GatewayReaderFunc(func(key []byte) ([]byte, uint64, bool) {
				execMu.Lock()
				defer execMu.Unlock()
				return ex.GetVersioned(key)
			}))
		}
	}
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	gw, err := c.ServeGateway(0, o)
	if err != nil {
		t.Fatalf("ServeGateway: %v", err)
	}
	c.Start()
	t.Cleanup(func() {
		gw.Close()
		c.Stop()
	})
	return c, gw
}

func TestGatewaySubmitCommitReadE2E(t *testing.T) {
	_, gw := buildGatewayCluster(t, GatewayOptions{})

	var commits, values atomic.Int64
	var gotVal atomic.Value
	cl, err := gateway.Dial(gw.Addr(), func(ev gateway.ServerEvent) {
		switch ev.Kind {
		case gateway.MsgCommit:
			commits.Add(1)
		case gateway.MsgValue:
			gotVal.Store(append([]byte(nil), ev.Value...))
			values.Add(1)
		}
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	tx := execution.EncodeTx(execution.Tx{Op: execution.OpSet, Key: []byte("greeting"), Value: []byte("hello")})
	if err := cl.Submit(1, 0, tx); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, 20*time.Second, func() bool { return commits.Load() == 1 })

	if err := cl.Read(1, 1, []byte("greeting")); err != nil {
		t.Fatalf("Read: %v", err)
	}
	waitFor(t, 10*time.Second, func() bool { return values.Load() == 1 })
	if got := gotVal.Load().([]byte); string(got) != "hello" {
		t.Fatalf("read value = %q, want %q", got, "hello")
	}
}

func TestGatewayMetricsInPipelineSnapshot(t *testing.T) {
	c, gw := buildGatewayCluster(t, GatewayOptions{})
	var commits atomic.Int64
	cl, err := gateway.Dial(gw.Addr(), func(ev gateway.ServerEvent) {
		if ev.Kind == gateway.MsgCommit {
			commits.Add(1)
		}
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	tx := execution.EncodeTx(execution.Tx{Op: execution.OpSet, Key: []byte("k"), Value: []byte("v")})
	if err := cl.Submit(2, 0, tx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 20*time.Second, func() bool { return commits.Load() == 1 })
	snap := c.PipelineMetrics(0)
	if snap.Counter("gateway.admitted") != 1 {
		t.Fatalf("gateway.admitted = %d, want 1\n%s", snap.Counter("gateway.admitted"), snap)
	}
	if snap.Hist("gateway.e2e_latency").Count != 1 {
		t.Fatalf("gateway.e2e_latency count = %d, want 1", snap.Hist("gateway.e2e_latency").Count)
	}
	if snap.Counter("intake.proposals") == 0 && snap.Hist("exec.queue_wait").Count == 0 {
		// Not fatal — just ensure the snapshot still carries pipeline keys
		// alongside gateway ones (merged registry, not a private one).
		if len(snap.Counters) < 2 {
			t.Fatalf("pipeline snapshot looks empty: %s", snap)
		}
	}
}

func TestGatewayLoadGeneratorSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock load run")
	}
	_, gw := buildGatewayCluster(t, GatewayOptions{})
	rep, err := load.Run(load.Config{
		Addr:     gw.Addr(),
		Conns:    2,
		Clients:  50,
		Rate:     300,
		Duration: 2 * time.Second,
		Drain:    10 * time.Second,
		Seed:     7,
	})
	if err != nil {
		t.Fatalf("load.Run: %v", err)
	}
	if rep.ConnErrs != 0 {
		t.Fatalf("connection errors: %d", rep.ConnErrs)
	}
	if rep.Offered == 0 || rep.Committed == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.Committed < rep.Acked*9/10 {
		t.Fatalf("commit shortfall: acked=%d committed=%d", rep.Acked, rep.Committed)
	}
	if rep.E2E.Count() == 0 || rep.E2E.Quantile(0.99) == 0 {
		t.Fatalf("no latency samples: %s", rep)
	}
}
