module clanbft

go 1.22
