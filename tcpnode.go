package clanbft

import (
	"bytes"
	"fmt"
	"time"

	"clanbft/internal/committee"
	"clanbft/internal/core"
	"clanbft/internal/crypto"
	"clanbft/internal/mempool"
	"clanbft/internal/metrics"
	"clanbft/internal/store"
	"clanbft/internal/transport"
	"clanbft/internal/types"
)

// TCPNodeOptions configures one real-socket consensus node. Every node in
// the deployment must share N, Mode, clan parameters, and Seed (keys and
// clan sampling are derived deterministically from the seed so that a
// deployment can be bootstrapped without a key-exchange ceremony; a
// production deployment would load per-party keys from a PKI instead).
type TCPNodeOptions struct {
	Self  NodeID
	Addrs map[NodeID]string // full address book, including Self
	Options
}

// TCPNode is a single consensus party bound to a TCP endpoint.
type TCPNode struct {
	ep       *transport.TCPEndpoint
	node     *core.Node
	pool     *mempool.Pool
	vpool    *crypto.VerifyPool
	st       store.Store
	clans    [][]types.NodeID
	opts     TCPNodeOptions
	onCommit []func(Commit)
	started  bool
}

// NewTCPNode creates (but does not start) a node listening on
// Addrs[Self].
func NewTCPNode(o TCPNodeOptions) (*TCPNode, error) {
	if err := o.fill(); err != nil {
		return nil, err
	}
	// The address book needs this party and every epoch-0 member; parties
	// that join later are dialed once their committed ReconfigTx advertises
	// an address (core's OnReconfig feeds transport.AddPeer).
	if _, ok := o.Addrs[o.Self]; !ok {
		return nil, fmt.Errorf("clanbft: address book missing self %d", o.Self)
	}
	members := o.Members
	if members == nil {
		members = make([]NodeID, o.N)
		for i := range members {
			members[i] = NodeID(i)
		}
	}
	for _, id := range members {
		if _, ok := o.Addrs[id]; !ok {
			return nil, fmt.Errorf("clanbft: address book missing epoch-0 member %d", id)
		}
	}
	keys := crypto.GenerateKeys(o.N, uint64(o.Seed)+1)
	reg := crypto.NewRegistry(keys, !o.NoCheckSigs)

	var clans [][]types.NodeID
	switch o.Mode {
	case ModeSingleClan:
		size := o.ClanSize
		if size == 0 {
			size = PlanClanSize(o.N, o.FailureProb)
		}
		if o.Members != nil {
			clans = [][]types.NodeID{committee.SampleClanMembers(o.Members, min(size, len(o.Members)), o.Seed+2)}
		} else {
			clans = [][]types.NodeID{committee.SampleClan(o.N, size, o.Seed+2)}
		}
	case ModeMultiClan:
		if o.Members != nil {
			clans = committee.PartitionMembers(o.Members, o.NumClans, o.Seed+2)
		} else {
			clans = committee.PartitionClans(o.N, o.NumClans, o.Seed+2)
		}
	}

	ep, err := transport.NewTCPEndpoint(o.Self, o.Addrs)
	if err != nil {
		return nil, err
	}
	n := &TCPNode{ep: ep, clans: clans, opts: o, pool: mempool.NewPool(o.MaxTxPerBlock)}
	var st store.Store
	if o.StoreDir != "" {
		disk, err := store.Open(o.StoreDir, store.Options{})
		if err != nil {
			ep.Close()
			return nil, err
		}
		st = disk
		n.st = disk
	}
	// Pre-verify inbound signatures on a GOMAXPROCS-wide pool so the
	// serialized handler goroutine is never the verification bottleneck.
	verifyCores := 0
	if reg.CheckSigs && !o.SerialVerify {
		n.vpool = crypto.NewVerifyPool(0, 0)
		verifyCores = n.vpool.Workers()
	}
	n.node = core.New(core.Config{
		Self:            o.Self,
		N:               o.N,
		Mode:            o.Mode,
		Clans:           clans,
		Key:             &keys[o.Self],
		Reg:             reg,
		Costs:           crypto.ZeroCosts(),
		Store:           st,
		Blocks:          n.pool,
		LeadersPerRound: o.LeadersPerRound,
		RoundTimeout:    o.RoundTimeout,
		VerifyCores:     verifyCores,
		ExecQueue:       o.ExecQueue,
		Members:         o.Members,
		ReconfigDelay:   o.ReconfigDelay,
		// Installed epochs admit joined peers to the transport layer so
		// Broadcast reaches them and their handshakes are accepted.
		OnReconfig: func(info core.EpochInfo) {
			for id, addr := range info.Joins {
				if id != o.Self {
					ep.AddPeer(id, addr)
				}
			}
		},
		Deliver: func(cv core.CommittedVertex) {
			for _, fn := range n.onCommit {
				fn(cv)
			}
		},
	}, ep, ep.Clock())
	if n.vpool != nil {
		ep.SetVerifier(n.node.Verifier(), n.vpool)
	}
	return n, nil
}

// Addr returns the bound listen address.
func (n *TCPNode) Addr() string { return n.ep.Addr() }

// OnCommit registers a total-order callback. Must precede Start.
func (n *TCPNode) OnCommit(fn func(Commit)) {
	if n.started {
		panic("clanbft: OnCommit after Start")
	}
	n.onCommit = append(n.onCommit, fn)
}

// Start begins participating in consensus.
func (n *TCPNode) Start() {
	n.started = true
	n.node.Start()
}

// Submit queues a transaction for this node's next proposal. Only block
// proposers (clan members in single-clan mode) include payloads; submitting
// elsewhere queues transactions that will never be proposed.
func (n *TCPNode) Submit(tx []byte) { n.pool.Submit(tx) }

// Clans returns the deployment's clan composition.
func (n *TCPNode) Clans() [][]NodeID { return n.clans }

// FaultBound returns f_c for this node's clan — the number of clan members
// that may fail while clients still obtain f_c+1 matching read responses.
func (n *TCPNode) FaultBound() int {
	for _, cl := range n.clans {
		for _, m := range cl {
			if m == n.opts.Self {
				return committee.ClanMaxFaulty(len(cl))
			}
		}
	}
	return committee.ClanMaxFaulty(n.opts.N)
}

// SetPeerAddr updates one peer's dial address before traffic flows to it.
// This is the ":0" bootstrap choreography: create every node with
// placeholder addresses, read the real ones off Addr(), exchange them, fix
// the books with SetPeerAddr, then Start.
func (n *TCPNode) SetPeerAddr(id NodeID, addr string) { n.ep.SetPeerAddr(id, addr) }

// Metrics returns the node's consensus counters.
func (n *TCPNode) Metrics() core.Metrics { return n.node.MetricsSnapshot() }

// PipelineMetrics returns the node's unified pipeline metrics snapshot
// (per-stage queue depths and latency histograms plus transport counters).
func (n *TCPNode) PipelineMetrics() metrics.Snapshot { return n.node.PipelineSnapshot() }

// Round returns the node's current round.
func (n *TCPNode) Round() types.Round { return n.node.Round() }

// Stats returns transport-level traffic counters.
func (n *TCPNode) Stats() transport.Stats { return n.ep.Stats() }

// Close shuts the node down: drains pending commit deliveries (ExecQueue
// > 0), stops the consensus engine, then closes the endpoint, verify pool,
// and store.
func (n *TCPNode) Close() error {
	n.node.Flush()
	n.node.Stop()
	err := n.ep.Close()
	if n.vpool != nil {
		// After the endpoint: read loops must stop submitting first.
		n.vpool.Close()
	}
	if n.st != nil {
		if cerr := n.st.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// WaitRound blocks until the node passes round r or the timeout elapses,
// returning whether the round was reached (convenience for tests/tools).
func (n *TCPNode) WaitRound(r types.Round, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if n.node.Round() >= r {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return n.node.Round() >= r
}

// SubmitReconfig queues a signed membership transaction for inclusion in
// this node's next proposal. Build and sign it with SignReconfigTx (or a
// real PKI in production).
func (n *TCPNode) SubmitReconfig(tx ReconfigTx) { n.node.SubmitReconfig(tx) }

// EpochTable returns the node's retained epochs, oldest first.
func (n *TCPNode) EpochTable() []EpochInfo { return n.node.EpochTable() }

// CurrentEpoch returns the epoch governing the node's current round.
func (n *TCPNode) CurrentEpoch() uint64 { return n.node.CurrentEpoch() }

// SignReconfigTx builds a signed membership transaction under the
// deployment's deterministic key universe (n parties, seed as in Options).
// The affected party's own key signs: a join is a self-attestation carrying
// the dial address the new party will listen on.
func SignReconfigTx(n int, seed int64, action types.ReconfigAction, id NodeID, addr string) ReconfigTx {
	keys := crypto.GenerateKeys(n, uint64(seed)+1)
	reg := crypto.NewRegistry(keys, true)
	tx := ReconfigTx{Action: action, Node: id, Addr: addr}
	copy(tx.PubKey[:], keys[id].Pub)
	core.SignReconfig(reg, &keys[id], &tx)
	return tx
}

// FetchSnapshot bootstraps a joining (or lagging) node's store from a
// running donor: it binds a throwaway endpoint on o.Addrs[o.Self], requests
// a point-in-time snapshot (KindSnapReq), and restores the stream into
// o.StoreDir, from which NewTCPNode + Start recover — replaying the snapshot
// plus any WAL suffix instead of re-running the whole protocol history.
//
// The donor replies over its own outbound connection, so this party's
// address must already be in the donor's book: for a joiner that happens
// the moment its committed ReconfigTx installs (AddPeer). Call before
// NewTCPNode; the temporary endpoint is closed so the real node can rebind
// the same address.
func FetchSnapshot(o TCPNodeOptions, donor NodeID, timeout time.Duration) error {
	if o.StoreDir == "" {
		return fmt.Errorf("clanbft: FetchSnapshot needs StoreDir")
	}
	donorAddr, ok := o.Addrs[donor]
	if !ok {
		return fmt.Errorf("clanbft: no address for donor %d", donor)
	}
	ep, err := transport.NewTCPEndpoint(o.Self, map[NodeID]string{
		o.Self: o.Addrs[o.Self],
		donor:  donorAddr,
	})
	if err != nil {
		return err
	}
	defer ep.Close()
	got := make(chan []byte, 1)
	ep.SetHandler(func(from types.NodeID, m types.Message) {
		if rsp, ok := m.(*types.SnapRspMsg); ok && from == donor {
			select {
			case got <- rsp.Data:
			default:
			}
		}
	})
	// Re-request on an interval: the first SnapReq can race the donor
	// learning this party's address from the committed join.
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	deadline := time.After(timeout)
	ep.Send(donor, &types.SnapReqMsg{})
	for {
		select {
		case data := <-got:
			return store.Restore(o.StoreDir, bytes.NewReader(data))
		case <-tick.C:
			ep.Send(donor, &types.SnapReqMsg{})
		case <-deadline:
			return fmt.Errorf("clanbft: snapshot fetch from %d timed out", donor)
		}
	}
}
