package clanbft

import (
	"fmt"
	"time"

	"clanbft/internal/committee"
	"clanbft/internal/core"
	"clanbft/internal/crypto"
	"clanbft/internal/mempool"
	"clanbft/internal/metrics"
	"clanbft/internal/store"
	"clanbft/internal/transport"
	"clanbft/internal/types"
)

// TCPNodeOptions configures one real-socket consensus node. Every node in
// the deployment must share N, Mode, clan parameters, and Seed (keys and
// clan sampling are derived deterministically from the seed so that a
// deployment can be bootstrapped without a key-exchange ceremony; a
// production deployment would load per-party keys from a PKI instead).
type TCPNodeOptions struct {
	Self  NodeID
	Addrs map[NodeID]string // full address book, including Self
	Options
}

// TCPNode is a single consensus party bound to a TCP endpoint.
type TCPNode struct {
	ep       *transport.TCPEndpoint
	node     *core.Node
	pool     *mempool.Pool
	vpool    *crypto.VerifyPool
	st       store.Store
	clans    [][]types.NodeID
	opts     TCPNodeOptions
	onCommit []func(Commit)
	started  bool
}

// NewTCPNode creates (but does not start) a node listening on
// Addrs[Self].
func NewTCPNode(o TCPNodeOptions) (*TCPNode, error) {
	if err := o.fill(); err != nil {
		return nil, err
	}
	if len(o.Addrs) != o.N {
		return nil, fmt.Errorf("clanbft: address book has %d entries, need %d", len(o.Addrs), o.N)
	}
	keys := crypto.GenerateKeys(o.N, uint64(o.Seed)+1)
	reg := crypto.NewRegistry(keys, !o.NoCheckSigs)

	var clans [][]types.NodeID
	switch o.Mode {
	case ModeSingleClan:
		size := o.ClanSize
		if size == 0 {
			size = PlanClanSize(o.N, o.FailureProb)
		}
		clans = [][]types.NodeID{committee.SampleClan(o.N, size, o.Seed+2)}
	case ModeMultiClan:
		clans = committee.PartitionClans(o.N, o.NumClans, o.Seed+2)
	}

	ep, err := transport.NewTCPEndpoint(o.Self, o.Addrs)
	if err != nil {
		return nil, err
	}
	n := &TCPNode{ep: ep, clans: clans, opts: o, pool: mempool.NewPool(o.MaxTxPerBlock)}
	var st store.Store
	if o.StoreDir != "" {
		disk, err := store.Open(o.StoreDir, store.Options{})
		if err != nil {
			ep.Close()
			return nil, err
		}
		st = disk
		n.st = disk
	}
	// Pre-verify inbound signatures on a GOMAXPROCS-wide pool so the
	// serialized handler goroutine is never the verification bottleneck.
	verifyCores := 0
	if reg.CheckSigs && !o.SerialVerify {
		n.vpool = crypto.NewVerifyPool(0, 0)
		verifyCores = n.vpool.Workers()
	}
	n.node = core.New(core.Config{
		Self:            o.Self,
		N:               o.N,
		Mode:            o.Mode,
		Clans:           clans,
		Key:             &keys[o.Self],
		Reg:             reg,
		Costs:           crypto.ZeroCosts(),
		Store:           st,
		Blocks:          n.pool,
		LeadersPerRound: o.LeadersPerRound,
		RoundTimeout:    o.RoundTimeout,
		VerifyCores:     verifyCores,
		ExecQueue:       o.ExecQueue,
		Deliver: func(cv core.CommittedVertex) {
			for _, fn := range n.onCommit {
				fn(cv)
			}
		},
	}, ep, ep.Clock())
	if n.vpool != nil {
		ep.SetVerifier(n.node.Verifier(), n.vpool)
	}
	return n, nil
}

// Addr returns the bound listen address.
func (n *TCPNode) Addr() string { return n.ep.Addr() }

// OnCommit registers a total-order callback. Must precede Start.
func (n *TCPNode) OnCommit(fn func(Commit)) {
	if n.started {
		panic("clanbft: OnCommit after Start")
	}
	n.onCommit = append(n.onCommit, fn)
}

// Start begins participating in consensus.
func (n *TCPNode) Start() {
	n.started = true
	n.node.Start()
}

// Submit queues a transaction for this node's next proposal. Only block
// proposers (clan members in single-clan mode) include payloads; submitting
// elsewhere queues transactions that will never be proposed.
func (n *TCPNode) Submit(tx []byte) { n.pool.Submit(tx) }

// Clans returns the deployment's clan composition.
func (n *TCPNode) Clans() [][]NodeID { return n.clans }

// FaultBound returns f_c for this node's clan — the number of clan members
// that may fail while clients still obtain f_c+1 matching read responses.
func (n *TCPNode) FaultBound() int {
	for _, cl := range n.clans {
		for _, m := range cl {
			if m == n.opts.Self {
				return committee.ClanMaxFaulty(len(cl))
			}
		}
	}
	return committee.ClanMaxFaulty(n.opts.N)
}

// SetPeerAddr updates one peer's dial address before traffic flows to it.
// This is the ":0" bootstrap choreography: create every node with
// placeholder addresses, read the real ones off Addr(), exchange them, fix
// the books with SetPeerAddr, then Start.
func (n *TCPNode) SetPeerAddr(id NodeID, addr string) { n.ep.SetPeerAddr(id, addr) }

// Metrics returns the node's consensus counters.
func (n *TCPNode) Metrics() core.Metrics { return n.node.MetricsSnapshot() }

// PipelineMetrics returns the node's unified pipeline metrics snapshot
// (per-stage queue depths and latency histograms plus transport counters).
func (n *TCPNode) PipelineMetrics() metrics.Snapshot { return n.node.PipelineSnapshot() }

// Round returns the node's current round.
func (n *TCPNode) Round() types.Round { return n.node.Round() }

// Stats returns transport-level traffic counters.
func (n *TCPNode) Stats() transport.Stats { return n.ep.Stats() }

// Close shuts the node down: drains pending commit deliveries (ExecQueue
// > 0), stops the consensus engine, then closes the endpoint, verify pool,
// and store.
func (n *TCPNode) Close() error {
	n.node.Flush()
	n.node.Stop()
	err := n.ep.Close()
	if n.vpool != nil {
		// After the endpoint: read loops must stop submitting first.
		n.vpool.Close()
	}
	if n.st != nil {
		if cerr := n.st.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// WaitRound blocks until the node passes round r or the timeout elapses,
// returning whether the round was reached (convenience for tests/tools).
func (n *TCPNode) WaitRound(r types.Round, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if n.node.Round() >= r {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return n.node.Round() >= r
}
