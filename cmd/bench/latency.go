package main

import (
	"fmt"
	"time"

	"clanbft/internal/core"
	"clanbft/internal/faults"
	"clanbft/internal/harness"
)

// runLatency is the latency-compression experiment: the same seeded
// geo-distributed cluster with one rotation member crashed mid-run, once
// under the static round-robin leader schedule and once with the
// reputation-driven schedule plus pipelined-anchor pacing. The geometry is
// chosen so the crash hurts: with three leader slots over nine parties the
// primary rotation (3r mod 9) cycles only parties 0, 3 and 6, so the static
// schedule re-elects the dead primary every third round and pays a full
// RoundTimeout each time — every vertex of the stalled rounds inherits the
// wait. Reputation demotes the offender after its first committed timeout
// certificate (an eight-party table puts a live primary in every round),
// and the anchor pause keeps the remaining slots on the 3-delta direct
// path. The headline claim — gated here and, as commit_latency_p50, in the
// micro-benchmark baseline — is a >= 25% lower commit p50 for the
// compressed configuration. Two companion pairs bracket the claim: a clean
// run (no faults) must show commit parity — the reputation machinery and
// the anchor pause must cost nothing when nobody misbehaves — and a
// crash-and-recover schedule (the dead primary restarts mid-measurement)
// must keep the compressed p50 below the static one: the restarted party
// serves out its penalty window and rejoins the rotation without handing
// the stall back. Deterministic: virtual time, fixed seed.
func runLatency(seed int64, quick bool) error {
	measure := 10 * time.Second
	if quick {
		measure = 5 * time.Second
	}
	base := harness.Config{
		Mode: core.ModeBaseline, N: 9, TxPerProposal: 30,
		Warmup: 2 * time.Second, Measure: measure, Seed: seed,
		RoundTimeout:    1200 * time.Millisecond,
		LeadersPerRound: 3,
		// The default 32-round fence was tuned for membership changes; at
		// the stalled static cadence it is ~13 simulated seconds, which
		// would push every schedule change past the end of the run. Both
		// configurations share the shorter fence so the comparison isolates
		// the schedule itself.
		ReconfigDelay: 4,
		Faults: &faults.Schedule{Seed: seed, Events: []faults.Event{
			// Crash before the measurement window opens: the static run
			// measures the steady dead-primary cadence, the compressed run
			// measures the schedule after the offense evidence commits.
			{At: 500 * time.Millisecond, Kind: faults.KindCrash, Node: 3},
		}},
	}
	compress := func(c harness.Config) harness.Config {
		c.LeaderReputation = true
		c.ReputationWindow = 256
		// The adaptive hold (twice the observed quorum→anchor gap) is capped
		// tightly: a short pause converts near-miss anchors to the direct
		// path, while a generous cap taxes every clean round with the full
		// gap and erodes commit parity.
		c.AnchorWait = 5 * time.Millisecond
		return c
	}

	clean := base
	clean.Faults = nil

	recover := base
	recover.Faults = &faults.Schedule{Seed: seed, Events: []faults.Event{
		{At: 500 * time.Millisecond, Kind: faults.KindCrash, Node: 3},
		{At: 2*time.Second + measure/2, Kind: faults.KindRestart, Node: 3},
	}}

	fmt.Printf("Latency compression — n=%d, L=%d, crashed rotation member 3 (seed %d)\n",
		base.N, base.LeadersPerRound, seed)
	fmt.Printf("  %-34s %10s %10s %10s %10s %9s\n",
		"scenario / schedule", "p50", "p95", "commits", "tps", "offenses")
	row := func(name string, r harness.Result) {
		fmt.Printf("  %-34s %10s %10s %10d %10.0f %9d\n",
			name, r.CommitP50.Round(time.Millisecond), r.CommitP95.Round(time.Millisecond),
			len(r.Order), r.TPS, r.ReputationOffenses)
	}
	rs := harness.Run(base)
	row("crash / static round-robin", rs)
	rc := harness.Run(compress(base))
	row("crash / reputation + pipelining", rc)
	cs := harness.Run(clean)
	row("clean / static round-robin", cs)
	cc := harness.Run(compress(clean))
	row("clean / reputation + pipelining", cc)
	vs := harness.Run(recover)
	row("crash+recover / static", vs)
	vc := harness.Run(compress(recover))
	row("crash+recover / reputation", vc)

	if rs.CommitP50 <= 0 || rc.CommitP50 <= 0 {
		return fmt.Errorf("latency: empty commit_latency histogram (static p50 %v, compressed p50 %v)",
			rs.CommitP50, rc.CommitP50)
	}
	if rc.ReputationOffenses == 0 {
		return fmt.Errorf("latency: no committed offense evidence; the schedule never engaged")
	}
	gain := 1 - float64(rc.CommitP50)/float64(rs.CommitP50)
	fmt.Printf("  commit p50 reduction under crash: %.0f%% (claim: >= 25%%)\n", gain*100)
	fmt.Printf("  clean-run commits: static %d, compressed %d (claim: parity within 10%%)\n",
		len(cs.Order), len(cc.Order))
	fmt.Printf("  crash+recover p50: static %v, compressed %v (claim: compressed lower)\n\n",
		vs.CommitP50.Round(time.Millisecond), vc.CommitP50.Round(time.Millisecond))
	if gain < 0.25 {
		return fmt.Errorf("latency: compressed p50 %v vs static %v — %.0f%% < 25%%",
			rc.CommitP50, rs.CommitP50, gain*100)
	}
	if lo := float64(len(cs.Order)) * 0.9; float64(len(cc.Order)) < lo {
		return fmt.Errorf("latency: clean-run commit parity broken — compressed %d vs static %d (floor %.0f)",
			len(cc.Order), len(cs.Order), lo)
	}
	if vc.CommitP50 >= vs.CommitP50 {
		return fmt.Errorf("latency: crash+recover compressed p50 %v not below static %v",
			vc.CommitP50, vs.CommitP50)
	}
	return nil
}
