package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"clanbft/internal/gateway/load"
	"clanbft/internal/harness"
)

// runGateway executes the serving-front-door overload experiment: a 4-node
// wall-clock cluster fronted by a real TCP gateway, driven by the open-loop
// generator at 1x and 2x the exec-bound sustainable rate. The table lands in
// results/gateway.txt (plus stdout), and the full e2e latency histograms in
// results/gateway_hist.json, so the overload-shed claim — goodput holds
// within ~10% while the admission layer's rejects absorb the excess — is
// checkable from the artifacts alone.
func runGateway(seed int64, quick bool) error {
	cfg := harness.GatewayOverloadConfig{Seed: seed}
	if quick {
		cfg.Phase = 4 * time.Second
		cfg.Warmup = time.Second
	}
	res, err := harness.GatewayOverload(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	f, err := os.Create("results/gateway.txt")
	if err != nil {
		return err
	}
	w := io.MultiWriter(os.Stdout, f)
	harness.PrintGatewayOverload(w, res)
	if err := f.Close(); err != nil {
		return err
	}
	hists := map[string]*load.Hist{}
	for _, r := range res.Rows {
		hists["e2e_"+r.Phase] = r.Hist
	}
	if err := load.WriteHistFile("results/gateway_hist.json", hists); err != nil {
		return err
	}
	fmt.Println("wrote results/gateway.txt, results/gateway_hist.json")
	if !res.ShedOK {
		return fmt.Errorf("overload shed claim failed: ratio=%.3f rejected=%d",
			res.Ratio, res.Rows[1].Rejected)
	}
	return nil
}
