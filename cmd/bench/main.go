// bench regenerates the paper's evaluation artifacts on the deterministic
// network simulator. Each experiment prints the same series/rows the paper
// reports; EXPERIMENTS.md records paper-vs-measured.
//
// Usage:
//
//	bench -exp fig1      # Figure 1: clan size vs n
//	bench -exp table1    # Table 1: the latency matrix driving the simulator
//	bench -exp fig5a     # Figure 5a: throughput vs latency, n=50
//	bench -exp fig5b     # Figure 5b: n=100
//	bench -exp fig5c     # Figure 5c: n=150 incl. multi-clan
//	bench -exp fig6      # Figure 6: throughput vs txs/proposal, n=150
//	bench -exp sec62     # Section 6.2 concrete probabilities
//	bench -exp comm      # communication-complexity accounting
//	bench -exp ablate    # single-clan throughput vs clan size
//	bench -exp sparse    # sparse-edge DAG scaling: n=50/100/200, dense vs sparse
//	bench -exp micro     # transport/WAL/pipeline/parallel-exec/gateway micro-benchmarks -> BENCH_PR9.json
//	bench -exp chaos     # seeded mixed-fault property runner (safety+liveness)
//	bench -exp gateway   # serving front door under overload: TCP gateway + open-loop load -> results/gateway.txt
//	bench -exp reconfig  # live membership change: 4->5 node TCP cluster, join via committed ReconfigTx -> results/reconfig.txt
//	bench -exp all       # every simulator experiment (micro/chaos/gateway/reconfig run only when named)
//
// -baseline compares -exp micro results against a checked-in JSON artifact
// and fails on regressions beyond tolerance: allocs/op and fsyncs/op must
// not rise more than 20%, end-to-end commits/sec and the parallel execution
// engine's tx/s must not fall below 80% of baseline (the CI bench-regression
// gate). -chaos-scenarios sets the seeds
// swept per clan mode for -exp chaos; -seed is the first seed.
//
// -metrics prints the merged per-stage pipeline metrics snapshot (queue
// depths, occupancy, latency histograms for intake/rbc/order/exec, plus
// transport/store counters) after each experiment.
//
// -cpuprofile and -memprofile write pprof artifacts covering the whole run;
// see EXPERIMENTS.md for the profiling workflow.
//
// -quick shrinks windows and load sets (minutes instead of hours);
// -full runs the paper's complete 13-point load sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"clanbft/internal/core"
	"clanbft/internal/harness"
	"clanbft/internal/metrics"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (fig1|table1|fig5a|fig5b|fig5c|fig6|sec62|comm|ablate|all)")
		quick = flag.Bool("quick", false, "short windows and fewer load points")
		full  = flag.Bool("full", false, "the paper's full 13-point load sweep (hours)")
		seed  = flag.Int64("seed", 1, "simulation seed")
		mout  = flag.String("micro-out", "BENCH_PR10.json", "output path for -exp micro results")
		mbase = flag.String("baseline", "", "baseline JSON to gate -exp micro against (allocs/op, fsyncs/op, commits/sec)")
		nchao = flag.Int("chaos-scenarios", 10, "seeds per clan mode for -exp chaos")
		warmF = flag.Duration("warmup", 4*time.Second, "simulated warmup window")
		measF = flag.Duration("measure", 10*time.Second, "simulated measurement window")
		showm = flag.Bool("metrics", false, "print the merged per-stage pipeline metrics after each experiment")
		cpup  = flag.String("cpuprofile", "", "write a CPU profile covering the whole run")
		memp  = flag.String("memprofile", "", "write a heap profile at exit")
	)
	flag.Parse()
	debug.SetGCPercent(400)
	debug.SetMemoryLimit(12 << 30)

	// Profiling covers everything between flag parsing and exit, including
	// the exit-on-error paths (fail stops the profile before os.Exit, which
	// would skip deferred stops).
	var cpuf *os.File
	if *cpup != "" {
		f, err := os.Create(*cpup)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		cpuf = f
	}
	finishProfiles := func() {
		if cpuf != nil {
			pprof.StopCPUProfile()
			cpuf.Close()
			cpuf = nil
			fmt.Fprintf(os.Stderr, "wrote cpu profile %s\n", *cpup)
		}
		if *memp != "" {
			f, err := os.Create(*memp)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote heap profile %s\n", *memp)
		}
	}
	fail := func(prefix string, err error) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", prefix, err)
		finishProfiles()
		os.Exit(1)
	}

	warm, meas := *warmF, *measF
	loads := harness.DefaultLoads
	if *quick {
		warm, meas = 2*time.Second, 5*time.Second
		loads = []int{500, 3000}
	}
	if *full {
		loads = harness.PaperLoads
	}

	run := func(name string) bool { return *exp == name || *exp == "all" }
	start := time.Now()

	// printPipeline renders the unified metrics spine for one experiment:
	// every Result carries its cluster-merged snapshot; merging across rows
	// gives the experiment-wide view.
	printPipeline := func(rs []harness.Result) {
		if !*showm {
			return
		}
		snaps := make([]metrics.Snapshot, len(rs))
		for i, r := range rs {
			snaps[i] = r.Pipeline
		}
		fmt.Println("  pipeline metrics (merged across rows):")
		metrics.Merge(snaps...).Fprint(os.Stdout)
		fmt.Println()
	}

	// Micro-benchmarks run only when named: they measure the real transport
	// and store, not the simulator, and emit their own JSON artifact.
	if *exp == "micro" {
		if err := runMicro(*mout, *mbase); err != nil {
			fail("micro", err)
		}
		fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(start).Round(time.Second))
		finishProfiles()
		return
	}

	// The gateway overload experiment runs only when named: it is the one
	// wall-clock experiment (real TCP sockets, real time) and takes ~20s.
	if *exp == "gateway" {
		if err := runGateway(*seed, *quick); err != nil {
			fail("gateway", err)
		}
		fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(start).Round(time.Second))
		finishProfiles()
		return
	}

	// The reconfiguration demo runs only when named: real sockets and wall
	// clock (a joining node fetches a snapshot and must catch up live).
	if *exp == "reconfig" {
		if err := runReconfig(*seed, *mbase); err != nil {
			fail("reconfig", err)
		}
		fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(start).Round(time.Second))
		finishProfiles()
		return
	}

	// The latency-compression experiment runs only when named: static vs
	// reputation+pipelined schedules under a crashed rotation member.
	if *exp == "latency" {
		if err := runLatency(*seed, *quick); err != nil {
			fail("latency", err)
		}
		fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(start).Round(time.Second))
		finishProfiles()
		return
	}

	// The chaos property runner likewise runs only when named: it exercises
	// disk stores and fault schedules, not the throughput experiments.
	if *exp == "chaos" {
		if err := runChaos(*seed, *nchao, *showm); err != nil {
			fail("chaos", err)
		}
		fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(start).Round(time.Second))
		finishProfiles()
		return
	}

	if run("fig1") {
		harness.PrintFigure1(os.Stdout)
		fmt.Println()
	}
	if run("table1") {
		harness.PrintTable1(os.Stdout)
		fmt.Println()
	}
	if run("sec62") {
		two, three := harness.Section62Numbers()
		fmt.Println("Section 6.2 — multi-clan dishonest-majority probabilities")
		fmt.Printf("  n=150, 2 clans of 75:  %.4g   (paper: 4.015e-6)\n", two)
		fmt.Printf("  n=387, 3 clans of 129: %.4g   (paper: 1.11e-6)\n", three)
		fmt.Println()
	}
	if run("fig5a") {
		rs := harness.Figure5(harness.SweepConfig{N: 50, Loads: loads, Warmup: warm, Measure: meas, Seed: *seed})
		harness.PrintSweep(os.Stdout, "Figure 5a — throughput vs latency at n=50", rs)
		fmt.Println()
		printPipeline(rs)
	}
	if run("fig5b") {
		rs := harness.Figure5(harness.SweepConfig{N: 100, Loads: loads, Warmup: warm, Measure: meas, Seed: *seed})
		harness.PrintSweep(os.Stdout, "Figure 5b — throughput vs latency at n=100", rs)
		fmt.Println()
		printPipeline(rs)
	}
	if run("fig5c") {
		rs := harness.Figure5(harness.SweepConfig{N: 150, Loads: loads, Warmup: warm, Measure: meas, Seed: *seed})
		harness.PrintSweep(os.Stdout, "Figure 5c — throughput vs latency at n=150 (incl. multi-clan)", rs)
		fmt.Println()
		printPipeline(rs)
	}
	if run("fig6") {
		rs := harness.Figure5(harness.SweepConfig{
			N: 150, Loads: harness.Fig6Loads, Warmup: warm, Measure: meas, Seed: *seed,
			Modes: []core.Mode{core.ModeBaseline, core.ModeSingleClan, core.ModeMultiClan},
		})
		harness.PrintSweep(os.Stdout, "Figure 6 — throughput vs txs/proposal at n=150", rs)
		fmt.Println()
		printPipeline(rs)
	}
	if run("ablate") {
		n := 50
		sizes := []int{26, 32, 40, 50}
		rs := harness.AblateClanSize(n, 3000, sizes, *seed)
		harness.PrintSweep(os.Stdout, "Ablation — single-clan throughput vs clan size (n=50, 3000 txs/prop)", rs)
		fmt.Println("  (clan=50 degenerates to full dissemination with clan-only proposers)")
		fmt.Println()
		printPipeline(rs)
	}
	// The sparse-edge scaling sweep runs only when named: n=200 clusters
	// cost minutes of host CPU per row even with short windows.
	if *exp == "sparse" {
		ns := []int{50, 100, 200}
		sw, sm := 1*time.Second, 3*time.Second
		if *quick {
			ns = []int{50, 100}
		}
		rows := harness.SparseDagScale(ns, sw, sm, *seed)
		harness.PrintSparse(os.Stdout, "Sparse-edge DAG scaling — multi-clan, dense vs sparse", rows)
		fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(start).Round(time.Second))
		finishProfiles()
		return
	}

	if run("comm") {
		n, load := 40, 1000
		if *quick {
			n = 20
		}
		rows := harness.CommComplexity(n, load, *seed)
		harness.PrintComm(os.Stdout, rows)
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(start).Round(time.Second))
	finishProfiles()
}
