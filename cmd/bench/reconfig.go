package main

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"clanbft"
	"clanbft/internal/perfbench"
	"clanbft/internal/types"
)

// runReconfig is the live-reconfiguration demonstration on real sockets: a
// 4-node TCP cluster commits a signed join ReconfigTx for a fifth party,
// crosses the scheduled epoch fence with no fork, and the joiner bootstraps
// from a donor snapshot plus WAL suffix (FetchSnapshot), recovers, and is
// observed proposing — its vertices ordered by the original members. The
// headline number is join_to_serving_ms: submit-of-tx to first committed
// vertex authored by the joiner. Results go to results/reconfig.txt; with
// -baseline the number gates against the checked-in artifact.
func runReconfig(seed int64, baseline string) error {
	const (
		universe = 5 // key universe: 4 founding members + 1 joiner
		members  = 4
		joiner   = clanbft.NodeID(4)
		delay    = types.Round(16)
	)
	fmt.Printf("Reconfiguration — 4→5 node TCP cluster, join via committed ReconfigTx\n")

	scratch, err := os.MkdirTemp("", "reconfig-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)

	base := clanbft.Options{
		N:             universe,
		Members:       []clanbft.NodeID{0, 1, 2, 3},
		ReconfigDelay: delay,
		MaxTxPerBlock: 64,
		ExecQueue:     256,
		Seed:          seed,
	}
	placeholder := map[clanbft.NodeID]string{}
	for i := 0; i < members; i++ {
		placeholder[clanbft.NodeID(i)] = "127.0.0.1:0"
	}

	// Commit order witnesses: per-node position sequences for the fork
	// check, plus first-seen time of a joiner-authored vertex at node 0.
	var mu sync.Mutex
	orders := make([][]types.Position, universe)
	var joinerServed time.Time
	watch := func(i int) func(clanbft.Commit) {
		return func(cv clanbft.Commit) {
			mu.Lock()
			orders[i] = append(orders[i], cv.Vertex.Pos())
			if i == 0 && cv.Vertex.Source == joiner && joinerServed.IsZero() {
				joinerServed = time.Now()
			}
			mu.Unlock()
		}
	}

	nodes := make([]*clanbft.TCPNode, members)
	for i := 0; i < members; i++ {
		opts := base
		opts.StoreDir = fmt.Sprintf("%s/node%d", scratch, i)
		nd, err := clanbft.NewTCPNode(clanbft.TCPNodeOptions{
			Self: clanbft.NodeID(i), Addrs: placeholder, Options: opts,
		})
		if err != nil {
			return err
		}
		defer nd.Close()
		nodes[i] = nd
		nd.OnCommit(watch(i))
	}
	for i := 0; i < members; i++ {
		for j := 0; j < members; j++ {
			if i != j {
				nodes[i].SetPeerAddr(clanbft.NodeID(j), nodes[j].Addr())
			}
		}
	}
	for _, nd := range nodes {
		nd.Start()
	}
	if !nodes[0].WaitRound(10, 15*time.Second) {
		return fmt.Errorf("cluster stuck at round %d before the join", nodes[0].Round())
	}
	preRound := nodes[0].Round()

	// Reserve the joiner's listen address up front: the committed join tx
	// advertises it, the members AddPeer it at the fence, FetchSnapshot
	// binds it transiently, and the real node rebinds it afterwards.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	joinerAddr := l.Addr().String()
	l.Close()

	t0 := time.Now()
	tx := clanbft.SignReconfigTx(universe, seed, clanbft.ReconfigJoin, joiner, joinerAddr)
	for _, nd := range nodes {
		nd.SubmitReconfig(tx)
	}

	// Fence: every member must install and cross into epoch 1.
	fenceDeadline := time.Now().Add(30 * time.Second)
	for _, nd := range nodes {
		for nd.CurrentEpoch() < 1 {
			if time.Now().After(fenceDeadline) {
				return fmt.Errorf("fence never crossed: node at epoch %d round %d",
					nd.CurrentEpoch(), nd.Round())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	fenceAt := time.Since(t0)
	tbl := nodes[0].EpochTable()
	fence := tbl[len(tbl)-1]

	// Joiner bootstrap: snapshot from donor 0, then recover and start.
	jopts := base
	jopts.StoreDir = scratch + "/joiner"
	jbook := map[clanbft.NodeID]string{joiner: joinerAddr}
	for i := 0; i < members; i++ {
		jbook[clanbft.NodeID(i)] = nodes[i].Addr()
	}
	jtcp := clanbft.TCPNodeOptions{Self: joiner, Addrs: jbook, Options: jopts}
	if err := clanbft.FetchSnapshot(jtcp, 0, 15*time.Second); err != nil {
		return fmt.Errorf("snapshot fetch: %w", err)
	}
	snapAt := time.Since(t0)
	jn, err := clanbft.NewTCPNode(jtcp)
	if err != nil {
		return fmt.Errorf("joiner boot: %w", err)
	}
	defer jn.Close()
	jn.OnCommit(watch(int(joiner)))
	jn.Start()

	// Serving: a joiner-authored vertex ordered at node 0.
	serveDeadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		served := !joinerServed.IsZero()
		mu.Unlock()
		if served {
			break
		}
		if time.Now().After(serveDeadline) {
			return fmt.Errorf("joiner never served: epoch %d round %d (fence r%d)",
				jn.CurrentEpoch(), jn.Round(), fence.StartRound)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	joinMs := float64(joinerServed.Sub(t0)) / float64(time.Millisecond)
	mu.Unlock()

	// Let the enlarged cluster run on, then fork-check every witness: all
	// five sequences must be prefix consistent (the joiner's replayed
	// prefix included).
	time.Sleep(2 * time.Second)
	mu.Lock()
	defer mu.Unlock()
	var ref []types.Position
	refNode := -1
	for i, seq := range orders {
		if len(seq) > len(ref) {
			ref, refNode = seq, i
		}
	}
	for i, seq := range orders {
		for j, pos := range seq {
			if i != refNode && pos != ref[j] {
				return fmt.Errorf("FORK: node %d position %d has %v, node %d has %v",
					i, j, pos, refNode, ref[j])
			}
		}
	}
	postRound := nodes[0].Round()
	rate := float64(postRound-preRound) / time.Since(t0).Seconds()

	var out []byte
	out = fmt.Appendf(out, "Reconfiguration — 4→5 node TCP cluster (seed %d)\n", seed)
	out = fmt.Appendf(out, "  fence:            epoch %d at round %d (delay %d rounds)\n",
		fence.Epoch, fence.StartRound, delay)
	out = fmt.Appendf(out, "  members:          %d -> %d\n", members, len(fence.Members))
	out = fmt.Appendf(out, "  fence crossed:    %.0f ms after submit\n",
		float64(fenceAt)/float64(time.Millisecond))
	out = fmt.Appendf(out, "  snapshot fetched: %.0f ms after submit\n",
		float64(snapAt)/float64(time.Millisecond))
	out = fmt.Appendf(out, "  join_to_serving:  %.0f ms (submit -> joiner-authored vertex ordered)\n", joinMs)
	out = fmt.Appendf(out, "  rounds/sec across fence: %.1f (rounds %d -> %d)\n",
		rate, preRound, postRound)
	out = fmt.Appendf(out, "  fork check:       %d witnesses prefix-consistent (longest %d commits)\n",
		universe, len(ref))
	os.Stdout.Write(out)
	if err := os.WriteFile("results/reconfig.txt", out, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote results/reconfig.txt")

	if baseline != "" {
		rows := []perfbench.Row{{
			Name:  "reconfig/join-4to5-tcp",
			Extra: map[string]float64{"join_to_serving_ms": joinMs},
		}}
		return compareBaseline(rows, baseline)
	}
	return nil
}
