package main

import (
	"encoding/json"
	"fmt"
	"os"

	"clanbft/internal/perfbench"
)

// runMicro executes the PR's gating micro-benchmarks (encode-once multicast,
// group-commit WAL) and writes the results as JSON. The artifact records
// ns/op and allocs/op per benchmark, plus extra metrics such as fsyncs/op,
// so the encode-once (allocs/op flat across peer counts) and group-commit
// (fsyncs/op < 1) claims are checkable from the file alone.
func runMicro(path string) error {
	fmt.Printf("Micro-benchmarks — transport encode-once + WAL group commit\n")
	rows := perfbench.Suite(os.Stdout)
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
