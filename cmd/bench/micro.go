package main

import (
	"encoding/json"
	"fmt"
	"os"

	"clanbft/internal/perfbench"
)

// runMicro executes the PR's gating micro-benchmarks (encode-once multicast,
// zero-copy receive, small-message coalescing, group-commit WAL, end-to-end
// pipeline, and the parallel execution engine's tx/s-vs-dependency-rate
// sweep) and writes the results as JSON. The artifact records ns/op and allocs/op per
// benchmark, plus extra metrics such as fsyncs/op and flushes/msg, so the
// encode-once (allocs/op flat across peer counts), zero-copy (rx allocs/op a
// small fraction of the copying path), coalescing (flushes/msg well under
// one), and group-commit (fsyncs/op < 1) claims are checkable from the file
// alone.
func runMicro(path, baseline string) error {
	fmt.Printf("Micro-benchmarks — transport rx/tx paths + WAL group commit\n")
	rows := perfbench.Suite(os.Stdout)
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if baseline != "" {
		return compareBaseline(rows, baseline)
	}
	return nil
}

// compareBaseline gates CI on the structural metrics of the micro-benchmark
// suite: allocs/op (the encode-once and zero-copy-receive claims),
// flushes/msg (the coalescing claim: writev syscalls per small message),
// fsyncs/op (the group-commit claim), and end-to-end commits/sec (the
// pipeline claim; simulated time, so deterministic). All are properties of
// the code path, unlike ns/op, which depends on the runner — so only they
// gate, with a ±20% tolerance plus a one-allocation absolute slack
// (testing.Benchmark rounds allocs to integers). commits/sec is
// higher-is-better: the gate fails on decreases. Only regressions fail;
// improvements just print.
func compareBaseline(rows []perfbench.Row, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base []perfbench.Row
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	byName := make(map[string]perfbench.Row, len(base))
	for _, r := range base {
		byName[r.Name] = r
	}
	fmt.Printf("\nRegression gate vs %s (±20%%):\n", path)
	regressions := 0
	check := func(name, metric string, got, want, slack float64) {
		limit := want*1.2 + slack
		status := "ok  "
		if got > limit {
			status = "FAIL"
			regressions++
		}
		fmt.Printf("  %s %-45s %-11s %.3f (baseline %.3f, limit %.3f)\n",
			status, name, metric, got, want, limit)
	}
	// checkMin is check for higher-is-better metrics: regression = falling
	// below 80% of the baseline.
	checkMin := func(name, metric string, got, want float64) {
		limit := want * 0.8
		status := "ok  "
		if got < limit {
			status = "FAIL"
			regressions++
		}
		fmt.Printf("  %s %-45s %-11s %.3f (baseline %.3f, floor %.3f)\n",
			status, name, metric, got, want, limit)
	}
	for _, r := range rows {
		b, ok := byName[r.Name]
		if !ok {
			fmt.Printf("  new  %-45s (no baseline entry)\n", r.Name)
			continue
		}
		check(r.Name, "allocs/op", float64(r.AllocsPerOp), float64(b.AllocsPerOp), 1)
		if want, ok := b.Extra["flushes/msg"]; ok {
			// Writev syscalls per small message (the coalescing claim). The
			// batch split depends on writer/queue timing, so 0.2 absolute
			// slack absorbs scheduler jitter; losing coalescing entirely
			// lands at 1.0 and still trips the gate.
			check(r.Name, "flushes/msg", r.Extra["flushes/msg"], want, 0.2)
		}
		if want, ok := b.Extra["fsyncs/op"]; ok {
			// Group formation depends on disk latency, so fsyncs/op moves
			// with the runner's storage; 0.1 absolute slack keeps the gate
			// meaningful (a no-batching regression lands at 1.0) without
			// tripping on scheduler jitter.
			check(r.Name, "fsyncs/op", r.Extra["fsyncs/op"], want, 0.1)
		}
		if want, ok := b.Extra["commits/sec"]; ok {
			checkMin(r.Name, "commits/sec", r.Extra["commits/sec"], want)
		}
		if want, ok := b.Extra["commit_latency_p50"]; ok {
			// Creation-to-ordering p50 under the faulted latency-compression
			// scenario (milliseconds; simulated time, so deterministic).
			// Lower is better: a regression in offense detection, the apply
			// fence, or the slot-fate rules parks the p50 near the
			// RoundTimeout — a multiple of the baseline, not a few percent.
			check(r.Name, "commit_latency_p50", r.Extra["commit_latency_p50"], want, 0)
		}
		if want, ok := b.Extra["bytes/commit"]; ok {
			// The sparse-edge metadata claim: wire bytes per committed
			// vertex must not creep back up. The number is deterministic
			// (virtual time, fixed seed, analytic byte accounting), so the
			// limit is the baseline plus 2% headroom — any protocol change
			// that raises it must re-record the baseline deliberately.
			got, limit := r.Extra["bytes/commit"], want*1.02
			status := "ok  "
			if got > limit {
				status = "FAIL"
				regressions++
			}
			fmt.Printf("  %s %-45s %-11s %.3f (baseline %.3f, limit %.3f)\n",
				status, r.Name, "bytes/commit", got, want, limit)
		}
		if want, ok := b.Extra["admit_share"]; ok {
			// The admission benchmark's virtual clock makes the share a
			// deterministic property of the token-bucket arithmetic
			// (offered = 2x refill → share 0.5). The floor catches a
			// refill or eviction bug that collapses admission.
			checkMin(r.Name, "admit_share", r.Extra["admit_share"], want)
		}
		if want, ok := b.Extra["p99_ms"]; ok {
			// Client e2e p99 through the gateway protocol. Wall-clock on
			// a shared CI runner, so the gate is deliberately loose:
			// ±20% plus 25ms absolute slack. It exists to catch
			// structural regressions (a lost notification path or an
			// added batching delay is a multiple, not a few percent).
			check(r.Name, "p99_ms", r.Extra["p99_ms"], want, 25)
		}
		if want, ok := b.Extra["join_to_serving_ms"]; ok {
			// Wall-clock from ReconfigTx submission to the first
			// joiner-authored committed vertex (-exp reconfig): fence
			// crossing plus snapshot transfer plus live catch-up on a
			// shared runner, so ±20% with 2s absolute slack. A lost
			// snapshot path or a joiner that re-runs history from round
			// zero is a multiple, not a few percent.
			check(r.Name, "join_to_serving_ms", r.Extra["join_to_serving_ms"], want, 2000)
		}
		if want, ok := b.Extra["tx/s"]; ok {
			// The parallel execution engine's throughput. The validation
			// cost is sleep-modeled, so the rate is stable across runners;
			// the 80% floor catches a scheduling or leveling regression
			// (losing parallelism entirely is a ~8x drop at conflict=0).
			checkMin(r.Name, "tx/s", r.Extra["tx/s"], want)
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond tolerance", regressions)
	}
	return nil
}
