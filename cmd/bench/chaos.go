package main

import (
	"fmt"
	"os"

	"clanbft/internal/core"
	"clanbft/internal/faults/chaos"
	"clanbft/internal/metrics"
)

// runChaos executes `perMode` seeded mixed-fault scenarios in each clan mode
// — the same property runner the chaos tests use: random drop/dup/reorder
// rules, a partition with heal, and crash/restart cycles with torn WAL
// tails, asserting prefix-consistent commits and post-heal liveness. Any
// violation prints the reproduction seed plus the full event trace and makes
// the run fail; re-running with `-seed <printed seed> -chaos-scenarios 1`
// (and the printed mode) replays the identical schedule.
func runChaos(base int64, perMode int, showMetrics bool) error {
	fmt.Printf("Chaos — %d seeded mixed-fault scenarios per mode (base seed %d)\n\n", perMode, base)
	failures := 0
	var snaps []metrics.Snapshot
	for _, mode := range []core.Mode{core.ModeSingleClan, core.ModeMultiClan} {
		for s := int64(0); s < int64(perMode); s++ {
			seed := base + s
			dir, err := os.MkdirTemp("", "clanbft-chaos-")
			if err != nil {
				return err
			}
			r := chaos.Run(chaos.Options{Seed: seed, Mode: mode, Dir: dir})
			os.RemoveAll(dir)
			snaps = append(snaps, r.Pipeline)
			if r.Failed() {
				failures++
				fmt.Printf("FAIL %-12s seed=%d\n  violations: %v\n  trace:\n%s\n",
					mode, seed, r.Violations, r.Trace)
			} else {
				fmt.Printf("ok   %-12s seed=%d ordered=%v\n", mode, seed, r.OrderedAtEnd)
			}
		}
	}
	if showMetrics {
		fmt.Println("\npipeline metrics (merged across scenarios):")
		metrics.Merge(snaps...).Fprint(os.Stdout)
	}
	if failures > 0 {
		return fmt.Errorf("%d scenario(s) violated safety or liveness — reproduce from the printed seed", failures)
	}
	fmt.Printf("\nall %d scenarios safe and live\n", 2*perMode)
	return nil
}
