// dagviz runs a short simulated cluster and dumps one node's DAG as Graphviz
// DOT, with leader vertices and commit paths highlighted — a debugging and
// teaching aid for the round structure described in docs/PROTOCOL.md.
//
//	go run ./cmd/dagviz -n 4 -rounds 8 | dot -Tsvg > dag.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"clanbft/internal/core"
	"clanbft/internal/crypto"
	"clanbft/internal/mempool"
	"clanbft/internal/simnet"
	"clanbft/internal/types"
)

func main() {
	var (
		n      = flag.Int("n", 4, "cluster size")
		rounds = flag.Int("rounds", 8, "rounds to draw")
		mode   = flag.String("mode", "sailfish", "sailfish | single-clan | multi-clan")
		clan   = flag.Int("clan", 0, "single-clan size (0 = solve)")
	)
	flag.Parse()

	m := core.ModeBaseline
	var clans [][]types.NodeID
	switch *mode {
	case "sailfish":
	case "single-clan":
		m = core.ModeSingleClan
		size := *clan
		if size == 0 {
			size = (*n)*2/3 + 1
		}
		for i := 0; i < size; i++ {
			if len(clans) == 0 {
				clans = [][]types.NodeID{{}}
			}
			clans[0] = append(clans[0], types.NodeID(i))
		}
	case "multi-clan":
		m = core.ModeMultiClan
		half := *n / 2
		clans = [][]types.NodeID{{}, {}}
		for i := 0; i < *n; i++ {
			clans[i/half%2] = append(clans[i/half%2], types.NodeID(i))
		}
	default:
		fmt.Fprintln(os.Stderr, "unknown mode")
		os.Exit(2)
	}

	net := simnet.New(simnet.Config{N: *n, LatencyRTTms: [][]float64{{60}}, JitterPct: -1, Seed: 1})
	keys := crypto.GenerateKeys(*n, 1)
	reg := crypto.NewRegistry(keys, false)
	var observer *core.Node
	ordered := map[types.Position]bool{}
	leaders := map[types.Position]bool{}
	for i := 0; i < *n; i++ {
		id := types.NodeID(i)
		nd := core.New(core.Config{
			Self: id, N: *n, Mode: m, Clans: clans,
			Key: &keys[i], Reg: reg,
			Blocks: mempool.NewGenerator(id, 2, 64, false),
			Deliver: func(cv core.CommittedVertex) {
				if id == 0 {
					ordered[cv.Vertex.Pos()] = true
					leaders[types.Position{Round: cv.LeaderRound, Source: cv.Vertex.Source}] = false
				}
			},
		}, net.Endpoint(id), net.Clock(id))
		if i == 0 {
			observer = nd
		}
		nd.Start()
	}
	// ~2 message delays per round at 30 ms one-way.
	net.Run(time.Duration(*rounds) * 150 * time.Millisecond)

	d := observer.DAG()
	fmt.Println("digraph dag {")
	fmt.Println("  rankdir=RL; node [shape=box, fontname=monospace];")
	for r := types.Round(0); r <= d.MaxRound() && r <= types.Round(*rounds); r++ {
		fmt.Printf("  { rank=same; ")
		for _, v := range d.RoundVertices(r) {
			fmt.Printf("\"%d/%d\"; ", v.Round, v.Source)
		}
		fmt.Println("}")
		for _, v := range d.RoundVertices(r) {
			name := fmt.Sprintf("%d/%d", v.Round, v.Source)
			style := ""
			if uint64(v.Source) == uint64(v.Round)%uint64(*n) {
				style = ", style=filled, fillcolor=gold" // leader slot
			} else if ordered[v.Pos()] {
				style = ", style=filled, fillcolor=lightgrey"
			}
			fmt.Printf("  \"%s\" [label=\"r%d p%d\"%s];\n", name, v.Round, v.Source, style)
			for _, e := range v.StrongEdges {
				fmt.Printf("  \"%s\" -> \"%d/%d\";\n", name, e.Round, e.Source)
			}
			for _, e := range v.WeakEdges {
				fmt.Printf("  \"%s\" -> \"%d/%d\" [style=dashed, color=grey];\n", name, e.Round, e.Source)
			}
		}
	}
	fmt.Println("}")
}
