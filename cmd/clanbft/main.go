// clanbft runs consensus nodes over real TCP sockets. Two modes:
//
//	clanbft -local -n 7 -mode single-clan -duration 15s
//	    launches an n-node cluster in one process on loopback TCP, drives a
//	    synthetic workload, and prints throughput/latency — a real-socket
//	    smoke deployment.
//
//	clanbft -id 2 -peers peers.txt -mode sailfish
//	    runs ONE node of a multi-process deployment. peers.txt holds one
//	    "id host:port" pair per line; every process needs the same file and
//	    the same -seed/-mode/-clan flags.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clanbft"
)

func parseMode(s string) (clanbft.Mode, error) {
	switch s {
	case "sailfish", "baseline":
		return clanbft.ModeSailfish, nil
	case "single-clan", "single":
		return clanbft.ModeSingleClan, nil
	case "multi-clan", "multi":
		return clanbft.ModeMultiClan, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func main() {
	var (
		local    = flag.Bool("local", false, "run a full cluster on loopback")
		n        = flag.Int("n", 4, "cluster size")
		modeStr  = flag.String("mode", "sailfish", "sailfish | single-clan | multi-clan")
		clanSize = flag.Int("clan", 0, "single-clan size (0 = solve at 1e-6)")
		numClans = flag.Int("clans", 2, "number of clans (multi-clan)")
		duration = flag.Duration("duration", 15*time.Second, "local-mode run time")
		txRate   = flag.Int("rate", 200, "local-mode submitted txs/sec per proposer")
		txSize   = flag.Int("txsize", 512, "transaction size in bytes")
		id       = flag.Int("id", -1, "this node's id (multi-process mode)")
		peers    = flag.String("peers", "", "address book file: one 'id host:port' per line")
		seed     = flag.Int64("seed", 7, "shared deployment seed")
		storeDir = flag.String("store", "", "persistence directory")
		sparse   = flag.Bool("sparse", false, "sparse strong-edge mode (2f+1 sampled parents, suppressed cert relay)")
	)
	flag.Parse()

	mode, err := parseMode(*modeStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := clanbft.Options{
		N: *n, Mode: mode, ClanSize: *clanSize, NumClans: *numClans,
		Seed: *seed, StoreDir: *storeDir, RoundTimeout: 3 * time.Second,
		SparseEdges: *sparse,
	}

	if *local {
		runLocal(opts, *duration, *txRate, *txSize)
		return
	}
	if *id < 0 || *peers == "" {
		fmt.Fprintln(os.Stderr, "need -local, or -id and -peers")
		os.Exit(2)
	}
	addrs, err := readPeers(*peers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts.N = len(addrs)
	node, err := clanbft.NewTCPNode(clanbft.TCPNodeOptions{
		Self: clanbft.NodeID(*id), Addrs: addrs, Options: opts,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var committed atomic.Int64
	node.OnCommit(func(c clanbft.Commit) {
		if c.Block != nil {
			committed.Add(int64(c.Block.TxCount()))
		}
	})
	node.Start()
	fmt.Printf("node %d listening on %s (%s, n=%d)\n", *id, node.Addr(), mode, opts.N)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	tick := time.NewTicker(5 * time.Second)
	for {
		select {
		case <-tick.C:
			fmt.Printf("round=%d committed_txs=%d sent=%d msgs\n",
				node.Round(), committed.Load(), node.Stats().MsgsSent)
		case <-sig:
			fmt.Println("shutting down")
			node.Close()
			return
		}
	}
}

func readPeers(path string) (map[clanbft.NodeID]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[clanbft.NodeID]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad peers line %q", line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, err
		}
		out[clanbft.NodeID(id)] = fields[1]
	}
	return out, sc.Err()
}

func runLocal(opts clanbft.Options, duration time.Duration, rate, txSize int) {
	// Bind every node on a dynamic loopback port, then share the book.
	books := make([]map[clanbft.NodeID]string, opts.N)
	addrs := map[clanbft.NodeID]string{}
	nodes := make([]*clanbft.TCPNode, opts.N)
	for i := 0; i < opts.N; i++ {
		books[i] = map[clanbft.NodeID]string{}
		for j := 0; j < opts.N; j++ {
			books[i][clanbft.NodeID(j)] = "127.0.0.1:0"
		}
		nd, err := clanbft.NewTCPNode(clanbft.TCPNodeOptions{
			Self: clanbft.NodeID(i), Addrs: books[i], Options: opts,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		addrs[clanbft.NodeID(i)] = nd.Addr()
		nodes[i] = nd
	}
	for i := range nodes {
		for id, a := range addrs {
			nodes[i].SetPeerAddr(id, a)
		}
	}

	var mu sync.Mutex
	var committed, latSum, latN int64
	created := map[string]time.Time{}
	nodes[0].OnCommit(func(c clanbft.Commit) {
		if c.Block == nil {
			return
		}
		mu.Lock()
		for _, tx := range c.Block.Txs {
			committed++
			if t0, ok := created[string(tx[:16])]; ok {
				latSum += int64(time.Since(t0))
				latN++
				delete(created, string(tx[:16]))
			}
		}
		mu.Unlock()
	})
	for _, nd := range nodes {
		nd.Start()
		defer nd.Close()
	}
	clans := nodes[0].Clans()
	fmt.Printf("local cluster: n=%d mode=%v clans=%v\n", opts.N, opts.Mode, clans)

	// Drive the workload: rate txs/sec per proposer.
	proposers := nodes
	if opts.Mode == clanbft.ModeSingleClan {
		proposers = nil
		for _, id := range clans[0] {
			proposers = append(proposers, nodes[id])
		}
	}
	stop := time.After(duration)
	tick := time.NewTicker(time.Second / 10)
	defer tick.Stop()
	seq := 0
	start := time.Now()
loop:
	for {
		select {
		case <-tick.C:
			per := rate / 10
			for _, nd := range proposers {
				for k := 0; k < per; k++ {
					tx := make([]byte, txSize)
					copy(tx, fmt.Sprintf("tx%013d", seq))
					seq++
					mu.Lock()
					created[string(tx[:16])] = time.Now()
					mu.Unlock()
					nd.Submit(tx)
				}
			}
		case <-stop:
			break loop
		}
	}
	elapsed := time.Since(start)
	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("submitted=%d committed=%d tps=%.0f", seq, committed, float64(committed)/elapsed.Seconds())
	if latN > 0 {
		fmt.Printf(" avg_latency=%v", (time.Duration(latSum) / time.Duration(latN)).Round(time.Millisecond))
	}
	fmt.Printf(" rounds=%d\n", nodes[0].Round())
}
