// loadgen drives a clanbft client gateway with the open-loop load harness:
// a configurable population of simulated clients submitting at a fixed
// aggregate arrival rate with zipfian key popularity, measuring end-to-end
// commit latency (p50/p99/p999) and goodput.
//
// Two modes:
//
//	loadgen -addr host:port ...      # drive an existing gateway
//	loadgen -selfhost ...            # boot a 4-node TCP cluster + gateway
//	                                 # in-process, then drive it
//
// -selfhost exists for CI: the load-smoke job runs one binary that brings up
// real consensus over real sockets (nodes listen on :0 and exchange
// addresses via SetPeerAddr before starting), fronts node 0 with the
// gateway, applies load, and gates on the result:
//
//	-max-rejects N   fail if the admission layer rejected more than N
//	                 submissions (use 0 when offering below capacity)
//	-p99-max D       fail if committed-e2e p99 exceeds D (0 disables)
//
// Connection/protocol errors always fail the run. -hist-out dumps the full
// latency histograms as JSON for artifact upload.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"clanbft"
	"clanbft/internal/execution"
	"clanbft/internal/gateway/load"
)

func main() {
	var (
		addr     = flag.String("addr", "", "gateway address to drive (omit with -selfhost)")
		selfhost = flag.Bool("selfhost", false, "boot a 4-node TCP cluster + gateway in-process and drive it")
		rate     = flag.Float64("rate", 1000, "aggregate offered load, tx/s (open loop)")
		duration = flag.Duration("duration", 5*time.Second, "submission window")
		drain    = flag.Duration("drain", 10*time.Second, "max wait for outstanding commits after the window")
		conns    = flag.Int("conns", 4, "TCP connections")
		clients  = flag.Int("clients", 1000, "simulated client population")
		txSize   = flag.Int("tx-size", 128, "transaction value bytes")
		keys     = flag.Int("keys", 65536, "key-space size")
		zipfS    = flag.Float64("zipf", 1.1, "zipf skew (<=1 uniform)")
		readFrac = flag.Float64("read-frac", 0, "fraction of ops issued as f_c+1 reads")
		seed     = flag.Int64("seed", 1, "generator seed")
		histOut  = flag.String("hist-out", "", "write latency histograms (JSON) to this path")
		p99Max   = flag.Duration("p99-max", 0, "fail if committed-e2e p99 exceeds this (0 = no gate)")
		maxRej   = flag.Int64("max-rejects", -1, "fail if rejects exceed this (-1 = no gate)")
	)
	flag.Parse()
	fatal := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
		os.Exit(1)
	}

	target := *addr
	if *selfhost {
		gw, shutdown, err := bootSelfhost()
		if err != nil {
			fatal("selfhost: %v", err)
		}
		defer shutdown()
		target = gw.Addr()
		fmt.Printf("selfhost cluster up; gateway at %s\n", target)
	} else if target == "" {
		fatal("need -addr or -selfhost")
	}

	rep, err := load.Run(load.Config{
		Addr:     target,
		Conns:    *conns,
		Clients:  *clients,
		Rate:     *rate,
		Duration: *duration,
		Drain:    *drain,
		TxSize:   *txSize,
		Keys:     *keys,
		ZipfS:    *zipfS,
		ReadFrac: *readFrac,
		Seed:     *seed,
		OnTick: func(elapsed time.Duration, committed uint64) {
			fmt.Printf("  t=%-4v committed=%d\n", elapsed.Round(time.Second), committed)
		},
	})
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("\n%s\n", rep)
	fmt.Printf("ack latency p50=%v p99=%v\n",
		rep.AckLat.Quantile(0.50).Round(time.Microsecond),
		rep.AckLat.Quantile(0.99).Round(time.Microsecond))
	fmt.Printf("server commit latency p50=%v p99=%v\n",
		rep.SrvCommit.Quantile(0.50).Round(time.Millisecond),
		rep.SrvCommit.Quantile(0.99).Round(time.Millisecond))
	if len(rep.RejectsBy) > 0 {
		reasons := make([]string, 0, len(rep.RejectsBy))
		for r := range rep.RejectsBy {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			fmt.Printf("rejected[%s] = %d\n", r, rep.RejectsBy[r])
		}
	}
	if *readFrac > 0 {
		fmt.Printf("reads ok=%d err=%d\n", rep.ReadsOK, rep.ReadsErr)
	}

	if *histOut != "" {
		if err := load.WriteHistFile(*histOut, map[string]*load.Hist{
			"e2e_commit": rep.E2E,
			"admission":  rep.AckLat,
			"srv_commit": rep.SrvCommit,
		}); err != nil {
			fatal("hist-out: %v", err)
		}
		fmt.Printf("wrote %s\n", *histOut)
	}

	// Gates. Connection errors are always fatal: a died connection means
	// lost frames, which silently censors the latency distribution.
	failed := false
	if rep.ConnErrs > 0 {
		fmt.Fprintf(os.Stderr, "GATE FAIL: %d connection errors\n", rep.ConnErrs)
		failed = true
	}
	if rep.Committed == 0 {
		fmt.Fprintf(os.Stderr, "GATE FAIL: nothing committed\n")
		failed = true
	}
	if *maxRej >= 0 && int64(rep.Rejected) > *maxRej {
		fmt.Fprintf(os.Stderr, "GATE FAIL: %d rejects > max %d\n", rep.Rejected, *maxRej)
		failed = true
	}
	if *p99Max > 0 {
		if p99 := rep.E2E.Quantile(0.99); p99 > *p99Max {
			fmt.Fprintf(os.Stderr, "GATE FAIL: e2e p99 %v > max %v\n", p99.Round(time.Millisecond), *p99Max)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("gates passed")
}

// bootSelfhost brings up a 4-node TCP consensus cluster in-process using the
// ":0" bootstrap: every node listens on an ephemeral port with placeholder
// peer addresses, the real addresses are exchanged via SetPeerAddr, and only
// then do the nodes start. Node 0 gets the gateway; all nodes run executors,
// three of which serve the f_c+1 read path.
func bootSelfhost() (*clanbft.Gateway, func(), error) {
	const n = 4
	placeholder := map[clanbft.NodeID]string{}
	for i := 0; i < n; i++ {
		placeholder[clanbft.NodeID(i)] = "127.0.0.1:0"
	}
	nodes := make([]*clanbft.TCPNode, n)
	execs := make([]*execution.Executor, n)
	for i := 0; i < n; i++ {
		nd, err := clanbft.NewTCPNode(clanbft.TCPNodeOptions{
			Self:  clanbft.NodeID(i),
			Addrs: placeholder,
			Options: clanbft.Options{
				N:             n,
				MaxTxPerBlock: 512,
				ExecQueue:     256,
				Seed:          0,
			},
		})
		if err != nil {
			for _, p := range nodes[:i] {
				p.Close()
			}
			return nil, nil, err
		}
		nodes[i] = nd
		// nil key: executors here apply state without emitting signed
		// responses (the gateway's read path matches on version+value).
		ex := execution.NewExecutor(clanbft.NodeID(i), nil)
		execs[i] = ex
		nd.OnCommit(func(cv clanbft.Commit) { ex.Apply(cv) })
	}
	// Exchange the real listen addresses before any node starts.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				nodes[i].SetPeerAddr(clanbft.NodeID(j), nodes[j].Addr())
			}
		}
	}
	var responders []clanbft.GatewayStateReader
	for i := 0; i < 3; i++ {
		ex := execs[i]
		responders = append(responders, clanbft.GatewayReaderFunc(ex.GetVersioned))
	}
	gw, err := nodes[0].ServeGateway(clanbft.GatewayOptions{
		Addr:       "127.0.0.1:0",
		Responders: responders,
		Limits:     clanbft.GatewayLimits{ClientRate: 1e6},
	})
	if err != nil {
		for _, p := range nodes {
			p.Close()
		}
		return nil, nil, err
	}
	for _, nd := range nodes {
		nd.Start()
	}
	shutdown := func() {
		gw.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	}
	return gw, shutdown, nil
}
