// clansize is the committee-sizing calculator behind Figure 1 and the
// Section 6.2 analysis: given a tribe size it reports the minimum clan size
// for a target failure probability, and the exact dishonest-majority
// probability of multi-clan partitions.
//
// Usage:
//
//	clansize -fig1                 # reproduce Figure 1 (n = 100..1000 @ 1e-9)
//	clansize -n 500 -prob 1e-9     # one clan size
//	clansize -n 150 -clans 2       # partition failure probability (Sec 6.2)
package main

import (
	"flag"
	"fmt"
	"os"

	"clanbft/internal/committee"
)

func main() {
	var (
		n      = flag.Int("n", 0, "tribe size")
		prob   = flag.Float64("prob", 1e-9, "target failure probability")
		clans  = flag.Int("clans", 1, "number of equal disjoint clans")
		fig1   = flag.Bool("fig1", false, "print the Figure 1 curve (clan size vs n at 1e-9)")
		strict = flag.Bool("strict", false, "use the strict-majority convention (ties tolerated; matches the paper's Section 7 sizes)")
	)
	flag.Parse()

	if *fig1 {
		fmt.Println("Figure 1: minimum clan size ensuring honest majority (failure < 1e-9)")
		fmt.Printf("%8s %8s %10s %12s\n", "n", "f", "clan", "clan/n")
		th := committee.RatFromFloat(1e-9)
		for nn := 100; nn <= 1000; nn += 50 {
			f := committee.MaxFaulty(nn)
			nc := committee.MinClanSize(nn, f, th)
			fmt.Printf("%8d %8d %10d %11.1f%%\n", nn, f, nc, 100*float64(nc)/float64(nn))
		}
		return
	}
	if *n == 0 {
		flag.Usage()
		os.Exit(2)
	}
	f := committee.MaxFaulty(*n)
	if *clans <= 1 {
		th := committee.RatFromFloat(*prob)
		var nc int
		if *strict {
			nc = committee.MinClanSizeStrict(*n, f, th)
		} else {
			nc = committee.MinClanSize(*n, f, th)
		}
		p := committee.DishonestMajorityProb(*n, f, nc)
		fmt.Printf("n=%d f=%d target=%g -> clan size %d (exact failure prob %.4g)\n",
			*n, f, *prob, nc, committee.Float(p))
		return
	}
	sizes := committee.EqualPartitionSizes(*n, *clans)
	p := committee.MultiClanFailureProb(*n, f, sizes)
	fmt.Printf("n=%d f=%d partitioned into %d clans of sizes %v\n", *n, f, *clans, sizes)
	fmt.Printf("P(some clan has a dishonest majority) = %.4g\n", committee.Float(p))
}
