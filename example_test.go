package clanbft_test

import (
	"fmt"
	"sync"
	"time"

	"clanbft"
)

// ExampleNewCluster shows the minimal lifecycle: build a cluster, observe
// the total order, submit a transaction, and wait for it to commit.
func ExampleNewCluster() {
	cluster, err := clanbft.NewCluster(clanbft.Options{N: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	defer cluster.Stop()

	var mu sync.Mutex
	done := make(chan struct{})
	closed := false
	cluster.OnCommit(0, func(c clanbft.Commit) {
		if c.Block == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		for _, tx := range c.Block.Txs {
			if string(tx) == "pay alice 10" && !closed {
				closed = true
				close(done)
			}
		}
	})
	cluster.Start()
	cluster.Submit([]byte("pay alice 10"))

	select {
	case <-done:
		fmt.Println("committed")
	case <-time.After(30 * time.Second):
		fmt.Println("timeout")
	}
	// Output: committed
}

// ExamplePlanClanSize reproduces the paper's committee sizing: how many of
// 500 parties must a clan contain to keep an honest majority except with
// probability 1e-9?
func ExamplePlanClanSize() {
	fmt.Println(clanbft.PlanClanSize(500, 1e-9))
	// Output: 182
}
